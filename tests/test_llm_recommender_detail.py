"""Focused tests on the recommender's degradation channels."""

import numpy as np
import pytest

from repro.embedding.cache import shared_embedder
from repro.llm import SimulatedLLM
from repro.llm.engine import _GENERIC_WORDS
from repro.suites.bfcl import build_bfcl_suite
from repro.suites.geoengine import build_geoengine_suite
from repro.utils.rng import derive_rng


@pytest.fixture(scope="module")
def bfcl():
    return build_bfcl_suite(n_queries=30)


@pytest.fixture(scope="module")
def geo():
    return build_geoengine_suite(n_queries=30)


def retrieval_quality(llm, suite, n=20):
    """Mean cosine of the first recommendation to its gold description."""
    embedder = shared_embedder()
    sims = []
    for query in suite.queries[:n]:
        output = llm.recommend_tools(query, suite.registry)
        gold = suite.registry.get(query.gold_tools[0]).description
        sims.append(float(np.dot(embedder.encode_one(output.descriptions[0]),
                                 embedder.encode_one(gold))))
    return float(np.mean(sims))


class TestQualityScalesWithReasoning:
    def test_strong_beats_weak(self, bfcl):
        strong = SimulatedLLM.from_registry("hermes2-pro-8b", "full")
        weak = SimulatedLLM.from_registry("mistral-8b", "q4_0")
        assert retrieval_quality(strong, bfcl) > retrieval_quality(weak, bfcl) + 0.1

    def test_quantization_degrades_same_model(self, bfcl):
        # use a strong reasoner: its quantization delta (0.80 -> 0.57
        # effective quality) dwarfs paraphrase sampling noise
        full = SimulatedLLM.from_registry("llama3.1-8b", "full")
        q4 = SimulatedLLM.from_registry("llama3.1-8b", "q4_0")
        assert retrieval_quality(full, bfcl, n=30) > retrieval_quality(q4, bfcl, n=30)

    def test_weak_models_emit_generic_filler(self, bfcl):
        weak = SimulatedLLM.from_registry("mistral-8b", "q4_0")
        generic_hits = 0
        for query in bfcl.queries[:20]:
            output = weak.recommend_tools(query, bfcl.registry)
            words = set(" ".join(output.descriptions).split())
            generic_hits += int(bool(words & set(_GENERIC_WORDS)))
        assert generic_hits >= 5  # genericisation is the weak-model signature


class TestMergingBehaviour:
    def test_sequential_tasks_get_merged_descriptions(self, geo):
        llm = SimulatedLLM.from_registry("hermes2-pro-8b", "full")
        merged = 0
        for query in geo.queries:
            output = llm.recommend_tools(query, geo.registry)
            if len(output.descriptions) < len(set(query.gold_tools)):
                merged += 1
        # most multi-tool chains blend at least two needs into one text
        assert merged > len(geo.queries) / 2

    def test_single_tool_queries_never_merge(self, bfcl):
        llm = SimulatedLLM.from_registry("hermes2-pro-8b", "full")
        for query in bfcl.queries[:15]:
            output = llm.recommend_tools(query, bfcl.registry)
            # one gold tool -> at least one description, possibly plus a
            # spurious extra, never zero
            assert 1 <= len(output.descriptions) <= 2

    def test_merge_helper_respects_probability(self):
        llm = SimulatedLLM.from_registry("hermes2-pro-8b", "full")
        texts = ["First tool description.", "Second tool description.",
                 "Third tool description."]
        never = llm._merge_related_needs(list(texts), derive_rng("m0"), merge_p=0.0)
        always = llm._merge_related_needs(list(texts), derive_rng("m1"), merge_p=1.0)
        assert never == texts
        assert len(always) == 2  # adjacent pairs fuse, odd one remains


class TestUsageAccounting:
    def test_completion_scales_with_description_count(self, geo, bfcl):
        llm = SimulatedLLM.from_registry("hermes2-pro-8b", "full")
        geo_usage = np.mean([
            llm.recommend_tools(q, geo.registry).usage.completion_tokens
            for q in geo.queries[:10]
        ])
        bfcl_usage = np.mean([
            llm.recommend_tools(q, bfcl.registry).usage.completion_tokens
            for q in bfcl.queries[:10]
        ])
        assert geo_usage > bfcl_usage  # chains describe more tools

    def test_recommender_usage_is_small_vs_agent_call(self, bfcl):
        # paper Section III-B: "negligible overhead compared to the
        # subsequent function calling"
        llm = SimulatedLLM.from_registry("llama3.1-8b", "q4_K_M")
        query = bfcl.queries[0]
        rec_usage = llm.recommend_tools(query, bfcl.registry).usage
        turn = llm.execute_step(query, 0, list(bfcl.registry), 16384)
        assert rec_usage.prompt_tokens < 0.1 * turn.usage.prompt_tokens

"""Tests for repro.core.controller: level arbitration + fallbacks."""

import numpy as np
import pytest

from repro.core.controller import ToolController
from repro.core.levels import SearchLevelBuilder
from repro.embedding.cache import shared_embedder
from repro.suites.bfcl import build_bfcl_suite
from repro.suites.geoengine import build_geoengine_suite


@pytest.fixture(scope="module")
def embedder():
    return shared_embedder()


@pytest.fixture(scope="module")
def bfcl_levels(embedder):
    return SearchLevelBuilder(embedder=embedder).build(build_bfcl_suite(n_queries=10, n_train=60))


@pytest.fixture(scope="module")
def geo_levels(embedder):
    return SearchLevelBuilder(embedder=embedder).build(
        build_geoengine_suite(n_queries=10, n_train=60))


class TestArbitration:
    def test_single_tool_query_selects_level1(self, embedder, bfcl_levels):
        controller = ToolController(bfcl_levels, k=3)
        vec = embedder.encode_one(
            "Get the current weather conditions and temperature for a city.")
        decision = controller.decide(vec[None, :])
        assert decision.level == 1
        assert "get_current_weather" in decision.tools
        assert decision.n_tools <= 3

    def test_multi_tool_needs_prefer_level2(self, embedder, geo_levels):
        texts = [
            "Load a satellite imagery archive and filter scenes by country region.",
            "Generate captions for the scenes and plot them on a map viewer.",
        ]
        decision = ToolController(geo_levels, k=3).decide(embedder.encode(texts))
        assert decision.level == 2
        assert decision.n_tools > 3  # cluster union, not single tools

    def test_gibberish_falls_back_to_level3(self, embedder, bfcl_levels):
        controller = ToolController(bfcl_levels, k=3)
        vec = embedder.encode_one("zz qq xx yy www vv")
        decision = controller.decide(vec[None, :])
        assert decision.level == 3
        assert decision.n_tools == len(bfcl_levels.all_tools)

    def test_empty_recommendations_level3(self, bfcl_levels):
        decision = ToolController(bfcl_levels, k=3).decide(np.zeros((0, 768)))
        assert decision.level == 3

    def test_zero_vector_level3(self, bfcl_levels):
        decision = ToolController(bfcl_levels, k=3).decide(np.zeros((1, 768)))
        assert decision.level == 3

    def test_scores_reported(self, embedder, bfcl_levels):
        vec = embedder.encode_one("Translate text into another language.")
        decision = ToolController(bfcl_levels, k=3).decide(vec[None, :])
        assert decision.level1_score > 0.3
        assert decision.level2_score >= 0.0

    def test_empty_cluster_index_never_wins_arbitration(self, embedder, bfcl_levels):
        """A negative Level-1 mean must not lose to an empty Level 2."""
        from dataclasses import replace

        from repro.vectorstore import FlatIndex

        no_clusters = replace(bfcl_levels, clusters=[],
                              cluster_index=FlatIndex(dim=768, metric="cosine"))
        # a vector anti-correlated with the corpus: confident top-1 but
        # negative mean top-k
        anchor = embedder.encode_one(
            "Get the current weather conditions and temperature for a city.")
        controller = ToolController(no_clusters, k=len(no_clusters.all_tools),
                                    confidence_threshold=-2.0)
        decision = controller.decide(-anchor[None, :])
        assert decision.level in (1, 3)
        assert decision.n_tools > 0


class TestConfiguration:
    def test_invalid_k(self, bfcl_levels):
        with pytest.raises(ValueError):
            ToolController(bfcl_levels, k=0)

    def test_k_bounds_level1_tools(self, embedder, bfcl_levels):
        vec = embedder.encode_one("Evaluate a mathematical expression and return the value.")
        for k in (1, 2, 5):
            decision = ToolController(bfcl_levels, k=k).decide(vec[None, :])
            if decision.level == 1:
                assert decision.n_tools <= k

    def test_threshold_one_forces_level3(self, embedder, bfcl_levels):
        controller = ToolController(bfcl_levels, k=3, confidence_threshold=1.01)
        vec = embedder.encode_one("Get the weather forecast for a city.")
        assert controller.decide(vec[None, :]).level == 3

    def test_threshold_zero_never_level3(self, embedder, bfcl_levels):
        controller = ToolController(bfcl_levels, k=3, confidence_threshold=0.0)
        vec = embedder.encode_one("Translate a short sentence.")
        assert controller.decide(vec[None, :]).level in (1, 2)

    def test_max_level2_clusters_caps_union(self, embedder, geo_levels):
        texts = [
            "Load a satellite imagery archive and filter scenes by country region.",
            "Generate captions for the scenes and plot them on a map viewer.",
        ]
        small = ToolController(geo_levels, k=3, max_level2_clusters=1).decide(
            embedder.encode(texts))
        large = ToolController(geo_levels, k=3, max_level2_clusters=3).decide(
            embedder.encode(texts))
        if small.level == 2 and large.level == 2:
            assert small.n_tools <= large.n_tools

    def test_decision_tools_unique(self, embedder, geo_levels):
        texts = ["Detect ships in coastal imagery and count them per scene."]
        decision = ToolController(geo_levels, k=5).decide(embedder.encode(texts))
        assert len(decision.tools) == len(set(decision.tools))

"""Seeded randomized stress test: multi-query search == stacked per-query.

The batch-invariance contract underpins both the serving layer's bitwise
guarantee and the grid runner's backend equivalence, so it gets an
adversarial workout here: random corpora and query batches across shapes
chosen to straddle the padded-matmul boundary (``QUERY_BLOCK == 8``),
``k`` at and beyond the index size, single-row indexes and duplicated
query rows — for all three index families.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import derive_rng
from repro.vectorstore import FlatIndex, IVFIndex, PQIndex
from repro.vectorstore.metrics import QUERY_BLOCK

DIM = 24
#: batch sizes straddling the QUERY_BLOCK=8 padding boundary
BATCH_SIZES = [1, QUERY_BLOCK - 1, QUERY_BLOCK, QUERY_BLOCK + 1,
               2 * QUERY_BLOCK, 2 * QUERY_BLOCK + 3]


def _build(family: str, vectors: np.ndarray):
    if family == "flat":
        index = FlatIndex(dim=DIM, metric="cosine")
        index.add(vectors)
        return index
    if family == "ivf":
        # full coverage probe: every list is visited, so the candidate
        # set (and thus the result) is shape-independent and exact
        n_lists = min(4, vectors.shape[0])
        index = IVFIndex(dim=DIM, metric="cosine",
                         n_lists=n_lists, nprobe=n_lists)
        index.add(vectors)
        index.train()
        return index
    if family == "pq":
        index = PQIndex(dim=DIM, m=4,
                        n_centroids=max(2, min(16, vectors.shape[0])))
        index.add(vectors)
        index.train()
        return index
    raise ValueError(family)


def _assert_batch_matches_stacked(index, queries: np.ndarray, k: int) -> None:
    batched = index.search(queries, k)
    assert len(batched) == queries.shape[0]
    for row, result in enumerate(batched):
        single = index.search_one(queries[row], k)
        np.testing.assert_array_equal(result.ids, single.ids,
                                      err_msg=f"row {row}, k={k}")
        np.testing.assert_array_equal(result.scores, single.scores,
                                      err_msg=f"row {row}, k={k}")


@pytest.mark.parametrize("family", ["flat", "ivf", "pq"])
@pytest.mark.parametrize("trial", range(3))
def test_random_batches_match_per_query(family, trial):
    rng = derive_rng("vectorstore-stress", family, trial)
    n_vectors = int(rng.integers(5, 40))
    vectors = rng.normal(size=(n_vectors, DIM))
    index = _build(family, vectors)

    for batch_size in BATCH_SIZES:
        queries = rng.normal(size=(batch_size, DIM))
        for k in (1, 3, n_vectors, n_vectors + 7):  # k >= index size too
            _assert_batch_matches_stacked(index, queries, k)


@pytest.mark.parametrize("family", ["flat", "ivf", "pq"])
def test_duplicate_queries_get_identical_rows(family):
    """The same vector must retrieve identically wherever it rides."""
    rng = derive_rng("vectorstore-stress", "duplicates", family)
    index = _build(family, rng.normal(size=(12, DIM)))
    base = rng.normal(size=(3, DIM))
    # each base query duplicated across block boundaries
    queries = np.vstack([base, base[::-1], base[1:], base])
    results = index.search(queries, 4)
    by_key = {}
    for row in range(queries.shape[0]):
        key = queries[row].tobytes()
        got = (results[row].ids.tolist(), results[row].scores.tobytes())
        assert by_key.setdefault(key, got) == got, f"row {row} diverged"


@pytest.mark.parametrize("family", ["flat", "ivf", "pq"])
def test_single_row_index(family):
    rng = derive_rng("vectorstore-stress", "single-row", family)
    index = _build(family, rng.normal(size=(1, DIM)))
    queries = rng.normal(size=(QUERY_BLOCK + 1, DIM))
    for k in (1, 5):  # k clamps to the one stored vector
        results = index.search(queries, k)
        assert all(len(result) == 1 for result in results)
        _assert_batch_matches_stacked(index, queries, k)


@pytest.mark.parametrize("family", ["flat", "ivf", "pq"])
def test_search_arrays_matches_search(family):
    rng = derive_rng("vectorstore-stress", "arrays", family)
    index = _build(family, rng.normal(size=(15, DIM)))
    queries = rng.normal(size=(QUERY_BLOCK + 3, DIM))
    scores, ids = index.search_arrays(queries, 4)
    assert scores.shape == ids.shape == (queries.shape[0], 4)
    for row, result in enumerate(index.search(queries, 4)):
        np.testing.assert_array_equal(ids[row], result.ids)
        np.testing.assert_array_equal(scores[row], result.scores)

"""Spec dataclasses: validation, dict round-trip, pickle round-trip."""

import pickle

import pytest

from repro.specs import (
    AgentSpec,
    BudgetSpec,
    CatalogSpec,
    ExperimentSpec,
    GridSpec,
    ServingSpec,
    SuiteSpec,
    TenantSpec,
)

ALL_SPECS = [
    SuiteSpec(name="edgehome", n_queries=12, seed=3),
    SuiteSpec(name="edgehome", n_queries=12,
              catalog=CatalogSpec(name="edgehome", variant="compressed")),
    CatalogSpec(name="bfcl", variant="minimal",
                include=("calculate_expression", "web_search")),
    TenantSpec(name="home", suite=SuiteSpec(name="edgehome", n_queries=6),
               catalog=CatalogSpec(name="edgehome", variant="minimal")),
    AgentSpec(scheme="lis-k3", model="hermes2-pro-8b", quant="q4_K_M",
              k=4, confidence_threshold=0.2, force_level=2,
              context_window=8192),
    GridSpec(schemes=("default", "lis-k3"), models=("llama3.1-8b",),
             quants=("q4_K_M", "q8_0"), backend="process", workers=2,
             n_queries=8),
    TenantSpec(name="home", suite=SuiteSpec(name="edgehome", n_queries=6)),
    BudgetSpec(energy_budget_j=120.0, carbon_budget_g=0.02,
               window_requests=8, recovery_ticks=2, signal="sinusoid",
               intensity_g_per_kwh=380.0, intensity_amplitude=120.0,
               intensity_high=480.0, min_power_mode="30W"),
    ServingSpec(
        tenants=(TenantSpec(name="home", suite=SuiteSpec(name="edgehome")),),
        plan_cache_size=16,
        budget=BudgetSpec(energy_budget_j=90.0, window_requests=4)),
    ServingSpec(
        tenants=(TenantSpec(name="home", suite=SuiteSpec(name="edgehome")),
                 TenantSpec(name="assist", suite=SuiteSpec(name="bfcl"))),
        max_batch_size=16, max_wait_ms=1.5, queue_capacity=64,
        default_scheme="lis-k5", execution_backend="process",
        execution_workers=2, plan_cache_size=256),
    ExperimentSpec(
        suite=SuiteSpec(name="bfcl", n_queries=4),
        agent=AgentSpec(scheme="gorilla", model="qwen2-7b", quant="q4_0"),
        grid=GridSpec(schemes=("default",), models=("qwen2-7b",),
                      quants=("q4_0",)),
        serving=ServingSpec(plan_cache_size=8)),
]


@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: type(s).__name__)
class TestRoundTrips:
    def test_dict_round_trip(self, spec):
        data = spec.to_dict()
        assert type(spec).from_dict(data) == spec

    def test_dict_is_json_plain(self, spec):
        import json

        json.dumps(spec.to_dict())  # no custom types leak through

    def test_pickle_round_trip(self, spec):
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestNormalization:
    def test_grid_axes_accept_comma_strings(self):
        grid = GridSpec(schemes="default,lis-k3", models="llama3.1-8b",
                        quants="q4_K_M,q8_0")
        assert grid.schemes == ("default", "lis-k3")
        assert grid.quants == ("q4_K_M", "q8_0")

    def test_grid_axes_accept_lists(self):
        grid = GridSpec(schemes=["default"], models=["m"], quants=["q"])
        assert grid.schemes == ("default",)

    def test_grid_cells_order(self):
        grid = GridSpec(schemes=("a", "b"), models=("m",), quants=("q1", "q2"))
        assert grid.cells == (("a", "m", "q1"), ("b", "m", "q1"),
                              ("a", "m", "q2"), ("b", "m", "q2"))

    def test_tenant_accepts_suite_name_string(self):
        tenant = TenantSpec(name="home", suite="edgehome")
        assert tenant.suite == SuiteSpec(name="edgehome")

    def test_suite_accepts_catalog_name_string(self):
        suite = SuiteSpec(name="edgehome", catalog="edgehome")
        assert suite.catalog == CatalogSpec(name="edgehome")

    def test_tenant_accepts_catalog_string_and_dict(self):
        tenant = TenantSpec(name="home", suite="edgehome", catalog="edgehome")
        assert tenant.catalog == CatalogSpec(name="edgehome")
        tenant = TenantSpec(name="home", suite="edgehome",
                            catalog={"name": "edgehome", "variant": "minimal",
                                     "include": None})
        assert tenant.catalog.variant == "minimal"

    def test_tenant_effective_suite_applies_catalog_override(self):
        catalog = CatalogSpec(name="edgehome", variant="compressed")
        tenant = TenantSpec(name="home", suite=SuiteSpec(name="edgehome"),
                            catalog=catalog)
        assert tenant.effective_suite().catalog == catalog
        # no override: the suite spec passes through untouched
        plain = TenantSpec(name="home", suite=SuiteSpec(name="edgehome"))
        assert plain.effective_suite() is plain.suite

    def test_catalog_include_accepts_comma_string(self):
        spec = CatalogSpec(name="edgehome", include="set_alarm,turn_on_light")
        assert spec.include == ("set_alarm", "turn_on_light")

    def test_experiment_accepts_suite_name_string(self):
        spec = ExperimentSpec(suite="bfcl")
        assert spec.suite == SuiteSpec(name="bfcl")

    def test_nested_dicts_decode(self):
        spec = ExperimentSpec.from_dict({
            "suite": {"name": "edgehome", "n_queries": 4, "seed": None},
            "agent": {"scheme": "lis-k3", "model": "m", "quant": "q",
                      "k": None, "confidence_threshold": None,
                      "force_level": None, "context_window": None},
            "grid": None,
            "serving": {"tenants": [{"name": "t",
                                     "suite": {"name": "bfcl",
                                               "n_queries": None,
                                               "seed": None}}],
                        "max_batch_size": 4, "max_wait_ms": 1.0,
                        "queue_capacity": 8, "default_scheme": "lis-k3",
                        "default_model": "m", "default_quant": "q",
                        "execution_backend": "thread",
                        "execution_workers": None, "plan_cache_size": 2},
        })
        assert spec.suite.n_queries == 4
        assert spec.serving.tenants[0].suite.name == "bfcl"


class TestValidation:
    def test_suite_name_required(self):
        with pytest.raises(ValueError, match="non-empty"):
            SuiteSpec(name="")

    def test_catalog_name_required(self):
        with pytest.raises(ValueError, match="non-empty"):
            CatalogSpec(name="")

    def test_catalog_variant_domain(self):
        with pytest.raises(ValueError, match="full, compressed, minimal"):
            CatalogSpec(name="edgehome", variant="tiny")

    def test_catalog_variants_match_schema_constant(self):
        # specs.py mirrors the tools-layer constant to stay import-free;
        # this is the keep-in-sync check
        from repro.specs import CATALOG_VARIANTS
        from repro.tools.schema import DESCRIPTION_VARIANTS

        assert CATALOG_VARIANTS == DESCRIPTION_VARIANTS

    def test_catalog_empty_include_rejected(self):
        with pytest.raises(ValueError, match="at least one tool"):
            CatalogSpec(name="edgehome", include=())

    def test_catalog_spec_load_builds_variant_catalog(self):
        catalog = CatalogSpec(name="edgehome", variant="compressed").load()
        assert catalog.variant == "compressed"
        assert catalog.name == "edgehome"

    def test_suite_spec_load_retools_suite(self):
        spec = SuiteSpec(name="edgehome", n_queries=2,
                         catalog=CatalogSpec(name="edgehome",
                                             variant="minimal"))
        suite = spec.load()
        assert suite.catalog.variant == "minimal"

    def test_suite_n_queries_positive(self):
        with pytest.raises(ValueError, match="n_queries"):
            SuiteSpec(name="bfcl", n_queries=0)

    def test_agent_k_positive(self):
        with pytest.raises(ValueError, match="k must be >= 1"):
            AgentSpec(k=0)

    def test_agent_force_level_domain(self):
        with pytest.raises(ValueError, match="force_level"):
            AgentSpec(force_level=4)

    def test_agent_window_floor(self):
        with pytest.raises(ValueError, match="context_window"):
            AgentSpec(context_window=100)

    def test_grid_needs_axes(self):
        with pytest.raises(ValueError, match="schemes"):
            GridSpec(schemes=())

    def test_grid_workers_positive(self):
        with pytest.raises(ValueError, match="workers"):
            GridSpec(workers=0)

    def test_serving_duplicate_tenants(self):
        with pytest.raises(ValueError, match="unique"):
            ServingSpec(tenants=(TenantSpec("t", "bfcl"),
                                 TenantSpec("t", "edgehome")))

    def test_serving_unknown_backend_lists_names(self):
        with pytest.raises(ValueError, match="thread.*process|process.*thread"):
            ServingSpec(execution_backend="gpu")

    def test_serving_plan_cache_nonnegative(self):
        with pytest.raises(ValueError, match="plan_cache_size"):
            ServingSpec(plan_cache_size=-1)

    def test_budget_needs_a_control(self):
        with pytest.raises(ValueError, match="at least one control"):
            BudgetSpec()

    def test_budget_trace_requires_path(self):
        with pytest.raises(ValueError, match="requires trace_path"):
            BudgetSpec(energy_budget_j=1.0, signal="trace")

    def test_budget_unknown_signal_lists_names(self):
        with pytest.raises(ValueError, match="sinusoid.*static.*trace"):
            BudgetSpec(energy_budget_j=1.0, signal="lunar")

    def test_budget_power_mode_domain(self):
        with pytest.raises(ValueError, match="MAXN, 30W, 15W"):
            BudgetSpec(energy_budget_j=1.0, min_power_mode="5W")

    def test_budget_intensity_low_requires_high(self):
        with pytest.raises(ValueError, match="requires intensity_high"):
            BudgetSpec(energy_budget_j=1.0, intensity_low=200.0)

    def test_budget_builtin_signals_match_registry(self):
        # specs.py mirrors the builtin names to stay import-free; this
        # is the keep-in-sync check against the live registry
        from repro.registry import CARBON_SIGNALS
        from repro.specs import CARBON_SIGNAL_BUILTINS

        for name in CARBON_SIGNAL_BUILTINS:
            assert name in CARBON_SIGNALS

    def test_power_mode_names_match_hardware_ladder(self):
        from repro.hardware.power_modes import POWER_MODES
        from repro.power import MODE_LADDER
        from repro.specs import POWER_MODE_NAMES

        assert POWER_MODE_NAMES == MODE_LADDER
        assert set(POWER_MODE_NAMES) == set(POWER_MODES)

    def test_experiment_needs_suite_or_serving(self):
        with pytest.raises(ValueError, match="suite.*serving"):
            ExperimentSpec()

    def test_experiment_rejects_wrong_types(self):
        with pytest.raises(ValueError, match="AgentSpec"):
            ExperimentSpec(suite=SuiteSpec(name="bfcl"), agent="lis-k3")


class TestSpecImportsStayCheap:
    def test_constructing_specs_imports_nothing_heavy(self):
        """Spec construction (ServingSpec included) must not pull in the
        serving/evaluation stack — specs are the cheap layer."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        code = (
            "import sys; "
            "from repro.specs import AgentSpec, BudgetSpec, GridSpec, "
            "ServingSpec, SuiteSpec, TenantSpec; "
            "ServingSpec(tenants=(TenantSpec('t', SuiteSpec('edgehome')),), "
            "plan_cache_size=8, execution_backend='process', "
            "budget=BudgetSpec(energy_budget_j=50.0)); "
            "AgentSpec(); GridSpec(); "
            "heavy = sorted(m for m in sys.modules if m.startswith("
            "('repro.serving', 'repro.evaluation', 'repro.core', "
            "'repro.power', 'numpy'))); "
            "print(','.join(heavy))"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        out = subprocess.run([sys.executable, "-c", code],
                             env=dict(os.environ, PYTHONPATH=src),
                             capture_output=True, text=True, check=True)
        loaded = [m for m in out.stdout.strip().split(",") if m]
        assert loaded == [], f"spec construction loaded: {loaded}"


class TestConversions:
    def test_serving_spec_to_config(self):
        spec = ServingSpec(max_batch_size=4, max_wait_ms=0.5,
                           plan_cache_size=32)
        config = spec.to_config()
        assert config.max_batch_size == 4
        assert config.max_wait_ms == 0.5
        assert config.plan_cache_size == 32

    def test_replace_produces_new_frozen_spec(self):
        spec = AgentSpec(scheme="lis-k3")
        other = spec.replace(scheme="default")
        assert spec.scheme == "lis-k3"
        assert other.scheme == "default"
        with pytest.raises(Exception):
            spec.scheme = "x"  # frozen

    def test_serving_spec_threads_budget_to_config(self):
        budget = BudgetSpec(energy_budget_j=50.0, window_requests=8)
        spec = ServingSpec(budget=budget, plan_cache_size=8)
        assert spec.to_config().budget == budget
        # dict coercion mirrors the other nested specs
        coerced = ServingSpec(
            budget={"energy_budget_j": 50.0, "window_requests": 8},
            plan_cache_size=8)
        assert coerced.budget == budget
        with pytest.raises(ValueError, match="BudgetSpec"):
            ServingSpec(budget="tight")

    def test_budget_spec_to_policy(self):
        spec = BudgetSpec(energy_budget_j=5.0, intensity_high=500.0,
                          recovery_margin=0.9)
        policy = spec.to_policy()
        assert policy.energy_budget_j == 5.0
        assert policy.intensity_low == pytest.approx(450.0)
        assert policy.settle_requests == policy.window_requests

    def test_agent_kwargs_only_set_fields(self):
        assert AgentSpec().agent_kwargs() == {}
        assert AgentSpec(k=5, force_level=1).agent_kwargs() == {
            "k": 5, "force_level": 1}

"""Tests for the chat-template renderer and tool-call parser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.chat import (
    ChatTranscript,
    ChatTurn,
    parse_tool_response,
    render_agent_prompt,
    render_error_signal,
    render_recommender_prompt,
    render_tool_call,
)
from repro.llm.tokens import AGENT_SYSTEM_TOKENS, plan_agent_prompt
from repro.suites.bfcl_catalog import build_bfcl_registry
from repro.tools.schema import ToolCall


class TestTranscript:
    def test_invalid_role(self):
        with pytest.raises(ValueError):
            ChatTurn("narrator", "text")

    def test_render_contains_roles(self):
        transcript = ChatTranscript()
        transcript.add("system", "sys")
        transcript.add("user", "hello")
        rendered = transcript.render()
        assert "<|system|>" in rendered
        assert rendered.endswith("<|assistant|>\n")

    def test_prompt_tokens_positive(self):
        transcript = render_recommender_prompt("what's the weather in Paris")
        assert transcript.prompt_tokens > 40


class TestAgentPrompt:
    def test_contains_all_tool_names(self):
        tools = list(build_bfcl_registry())[:5]
        rendered = render_agent_prompt("do something", tools).render()
        for tool in tools:
            assert tool.name in rendered

    def test_history_appended(self):
        tools = list(build_bfcl_registry())[:2]
        call = ToolCall("get_current_weather", {"city": "Paris"})
        transcript = render_agent_prompt("task", tools, history=[(call, "ok: 18C")])
        rendered = transcript.render()
        assert "ok: 18C" in rendered
        assert "<|tool|>" in rendered

    def test_token_estimate_consistent_with_plan(self):
        # the engine's budget model is an upper envelope over the lean
        # concrete rendering (it reserves few-shot/pretty-print space):
        # rendered <= planned <= ~2.5x rendered
        tools = list(build_bfcl_registry())[:10]
        rendered = render_agent_prompt("what is the weather in Paris?", tools)
        plan = plan_agent_prompt("what is the weather in Paris?", tools, 16384)
        assert rendered.prompt_tokens <= plan.prompt_tokens
        assert plan.prompt_tokens <= 2.5 * rendered.prompt_tokens

    def test_error_prompt_mentions_fallback_contract(self):
        rendered = render_agent_prompt("t", list(build_bfcl_registry())[:1]).render()
        assert '"error"' in rendered  # the paper's failure-signal protocol


class TestParser:
    def test_well_formed_call(self):
        parsed = parse_tool_response('{"name": "t", "arguments": {"a": 1}}')
        assert parsed.call == ToolCall("t", {"a": 1})
        assert not parsed.is_error_signal

    def test_call_with_surrounding_chatter(self):
        text = 'Sure! Here is the call:\n{"name": "t", "arguments": {}}\nDone.'
        assert parse_tool_response(text).call is not None

    def test_error_signal(self):
        parsed = parse_tool_response('{"error": "no suitable tool"}')
        assert parsed.is_error_signal
        assert parsed.call is None

    def test_malformed_json(self):
        assert parse_tool_response('{"name": "t", "arguments":').malformed

    def test_no_json_at_all(self):
        assert parse_tool_response("I cannot help with that").malformed

    def test_non_dict_payload(self):
        assert parse_tool_response('["a", "b"]').malformed

    def test_bad_field_types(self):
        assert parse_tool_response('{"name": 3, "arguments": {}}').malformed
        assert parse_tool_response('{"name": "t", "arguments": []}').malformed

    def test_round_trip_with_renderers(self):
        call = ToolCall("lock_door", {"door": "front"})
        assert parse_tool_response(render_tool_call(call)).call == call
        assert parse_tool_response(render_error_signal("stuck")).is_error_signal

    @given(st.text(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_parser_never_raises(self, text):
        parsed = parse_tool_response(text)
        assert parsed.malformed or parsed.call is not None or parsed.is_error_signal

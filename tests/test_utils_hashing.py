"""Tests for repro.utils.hashing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.hashing import stable_hash64, stable_hash_bytes


class TestStableHashBytes:
    def test_digest_is_16_bytes(self):
        assert len(stable_hash_bytes("a")) == 16

    def test_same_input_same_digest(self):
        assert stable_hash_bytes("x", 1, 2.5) == stable_hash_bytes("x", 1, 2.5)

    def test_length_delimiting_prevents_concatenation_collisions(self):
        assert stable_hash_bytes("ab", "c") != stable_hash_bytes("a", "bc")

    def test_type_distinction_int_vs_str(self):
        assert stable_hash_bytes(1) != stable_hash_bytes("1")

    def test_bool_vs_int(self):
        assert stable_hash_bytes(True) != stable_hash_bytes(1)

    def test_bytes_accepted(self):
        assert stable_hash_bytes(b"raw") == stable_hash_bytes(b"raw")

    def test_unhashable_type_raises(self):
        with pytest.raises(TypeError):
            stable_hash_bytes(["list"])  # type: ignore[arg-type]


class TestStableHash64:
    def test_known_stability_across_runs(self):
        # Pin a value: any change to the derivation breaks reproducibility
        # of every seeded experiment, so it must be intentional.
        assert stable_hash64("repro") == stable_hash64("repro")

    def test_range_is_uint64(self):
        for part in ("a", "b", 12, -3, 2.5):
            value = stable_hash64(part)
            assert 0 <= value < 2**64

    @given(st.text(), st.text())
    def test_distinct_texts_rarely_collide(self, a, b):
        if a != b:
            assert stable_hash64(a) != stable_hash64(b)

    @given(st.integers(min_value=-(2**60), max_value=2**60))
    def test_integer_round_trip_determinism(self, value):
        assert stable_hash64(value) == stable_hash64(value)

    def test_negative_integers_supported(self):
        assert stable_hash64(-1) != stable_hash64(1)

"""Tests for repro.embedding.lexicon."""

from repro.embedding.lexicon import DEFAULT_CONCEPTS, ConceptLexicon, default_lexicon
from repro.embedding.tokenizer import stem


class TestConceptLexicon:
    def test_synonyms_share_concept(self):
        lexicon = default_lexicon()
        assert "weather" in lexicon.lookup(stem("forecast"))
        assert "weather" in lexicon.lookup(stem("weather"))

    def test_unknown_token_empty(self):
        assert default_lexicon().lookup("zzzzqq") == []

    def test_phrase_lookup(self):
        lexicon = default_lexicon()
        key = f"{stem('land')} {stem('use')}"
        assert "landuse" in lexicon.lookup_phrase(key)

    def test_geospatial_coverage(self):
        lexicon = default_lexicon()
        for term, concept in [
            ("satellite", "satellite"),
            ("detection", "detect"),
            ("caption", "caption"),
            ("ndvi", "vegetation"),
        ]:
            assert concept in lexicon.lookup(stem(term)), term

    def test_general_coverage(self):
        lexicon = default_lexicon()
        for term, concept in [
            ("translate", "translate"),
            ("stock", "stock"),
            ("calendar", "calendar"),
            ("derivative", "calculus"),
        ]:
            assert concept in lexicon.lookup(stem(term)), term

    def test_len_counts_concepts(self):
        assert len(default_lexicon()) == len(DEFAULT_CONCEPTS)

    def test_extended_adds_concept(self):
        extended = default_lexicon().extended({"quantum": ("qubit", "entangle")})
        assert "quantum" in extended.lookup(stem("qubit"))
        # base lexicon untouched
        assert default_lexicon().lookup(stem("qubit")) == []

    def test_extended_merges_terms_into_existing_concept(self):
        extended = default_lexicon().extended({"weather": ("barometer",)})
        assert "weather" in extended.lookup(stem("barometer"))
        assert "weather" in extended.lookup(stem("forecast"))

    def test_default_lexicon_is_shared_instance(self):
        assert default_lexicon() is default_lexicon()

    def test_every_concept_has_terms(self):
        for concept, terms in DEFAULT_CONCEPTS.items():
            assert terms, f"concept {concept} has no terms"

    def test_custom_lexicon_isolated(self):
        tiny = ConceptLexicon({"pets": ("dog", "cat")})
        assert "pets" in tiny.lookup("dog")
        assert tiny.lookup(stem("weather")) == []

"""Tests for repro.vectorstore.ivf."""

import numpy as np
import pytest

from repro.utils.rng import derive_rng
from repro.vectorstore import FlatIndex, IVFIndex
from repro.vectorstore.ivf import kmeans


@pytest.fixture
def clustered_data():
    rng = derive_rng("test-ivf-data")
    centers = np.array([[5.0, 0.0], [-5.0, 0.0], [0.0, 5.0]])
    points = np.vstack([center + 0.3 * rng.standard_normal((20, 2)) for center in centers])
    return points


class TestKMeans:
    def test_shapes(self, clustered_data):
        centroids, assignments = kmeans(clustered_data, 3)
        assert centroids.shape == (3, 2)
        assert assignments.shape == (60,)

    def test_deterministic(self, clustered_data):
        a, _ = kmeans(clustered_data, 3)
        b, _ = kmeans(clustered_data, 3)
        np.testing.assert_array_equal(a, b)

    def test_recovers_separated_clusters(self, clustered_data):
        _, assignments = kmeans(clustered_data, 3)
        # each ground-truth block must be pure
        for block in range(3):
            labels = assignments[block * 20 : (block + 1) * 20]
            assert len(set(labels.tolist())) == 1

    def test_clamps_k_to_n(self):
        centroids, _ = kmeans(np.ones((2, 3)), 10)
        assert centroids.shape[0] == 2

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kmeans(np.ones((2, 2)), 0)


class TestIVFIndex:
    def test_self_trains_on_first_search(self, clustered_data):
        index = IVFIndex(dim=2, n_lists=3)
        index.add(clustered_data)
        assert not index.is_trained
        index.search_one(np.array([5.0, 0.0]), k=1)
        assert index.is_trained

    def test_explicit_train_without_vectors_raises(self):
        with pytest.raises(ValueError):
            IVFIndex(dim=2).train()

    def test_search_matches_flat_on_easy_data(self, clustered_data):
        ivf = IVFIndex(dim=2, n_lists=3, nprobe=1)
        flat = FlatIndex(dim=2)
        ivf.add(clustered_data)
        flat.add(clustered_data)
        query = np.array([4.8, 0.3])
        assert ivf.search_one(query, k=1).top()[1] == flat.search_one(query, k=1).top()[1]

    def test_nprobe_all_lists_equals_flat(self, clustered_data):
        ivf = IVFIndex(dim=2, n_lists=3, nprobe=3)
        flat = FlatIndex(dim=2)
        ivf.add(clustered_data)
        flat.add(clustered_data)
        for query in (np.array([1.0, 1.0]), np.array([-3.0, 2.0])):
            ivf_ids = set(ivf.search_one(query, k=5).ids.tolist())
            flat_ids = set(flat.search_one(query, k=5).ids.tolist())
            assert ivf_ids == flat_ids

    def test_add_after_train_reassigns(self, clustered_data):
        index = IVFIndex(dim=2, n_lists=3, nprobe=3)
        index.add(clustered_data)
        index.train()
        index.add(np.array([[100.0, 100.0]]), ids=[999])
        result = index.search_one(np.array([100.0, 100.0]), k=1)
        assert result.top()[1] == 999

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IVFIndex(dim=2, n_lists=0)
        with pytest.raises(ValueError):
            IVFIndex(dim=2, nprobe=0)

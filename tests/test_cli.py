"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.suite == "bfcl"
        assert args.scheme == "lis-k3"
        assert args.queries == 60

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.tools == 46
        assert args.power_mode == "MAXN"

    def test_invalid_suite(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--suite", "toolbench"])

    def test_grid_defaults(self):
        args = build_parser().parse_args(["grid"])
        assert args.backend == "thread"
        assert args.workers is None
        assert args.schemes == "default,gorilla,lis-k3"

    def test_grid_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["grid", "--backend", "gpu"])


class TestCommands:
    def test_run_command(self, capsys):
        assert main(["run", "--suite", "bfcl", "-n", "5",
                     "--model", "qwen2-7b", "--scheme", "lis-k3"]) == 0
        out = capsys.readouterr().out
        assert "success" in out
        assert "CI" in out

    def test_compare_command(self, capsys):
        assert main(["compare", "--suite", "bfcl", "-n", "4",
                     "--model", "qwen2-7b"]) == 0
        out = capsys.readouterr().out
        assert "gorilla" in out
        assert "vs default" in out

    def test_levels_command(self, capsys):
        assert main(["levels", "--suite", "geoengine", "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "Level 2" in out
        assert "cluster 0" in out

    def test_profile_command(self, capsys):
        assert main(["profile", "--tools", "19", "--window", "8192",
                     "--power-mode", "15W"]) == 0
        out = capsys.readouterr().out
        assert "prefill" in out
        assert "15W" in out


class TestModuleEntry:
    def test_dunder_main_importable(self):
        import repro.__main__  # noqa: F401

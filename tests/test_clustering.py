"""Tests for repro.clustering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.clustering import AgglomerativeClustering, pairwise_distances, silhouette_score
from repro.utils.rng import derive_rng


def three_blobs(points_per_blob=8, spread=0.2):
    rng = derive_rng("test-clustering-blobs")
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    blobs = [center + spread * rng.standard_normal((points_per_blob, 2)) for center in centers]
    labels = np.repeat(np.arange(3), points_per_blob)
    return np.vstack(blobs), labels


class TestPairwiseDistances:
    def test_euclidean_known_values(self):
        vectors = np.array([[0.0, 0.0], [3.0, 4.0]])
        dist = pairwise_distances(vectors)
        assert dist[0, 1] == pytest.approx(5.0)

    def test_symmetric_zero_diagonal(self):
        vectors = derive_rng("pd").standard_normal((6, 3))
        dist = pairwise_distances(vectors)
        np.testing.assert_allclose(dist, dist.T)
        np.testing.assert_allclose(np.diag(dist), 0.0)

    def test_cosine_range(self):
        vectors = derive_rng("pd2").standard_normal((6, 3))
        dist = pairwise_distances(vectors, metric="cosine")
        assert (dist >= 0).all() and (dist <= 2.0).all()

    def test_cosine_zero_vector_safe(self):
        dist = pairwise_distances(np.array([[0.0, 0.0], [1.0, 0.0]]), metric="cosine")
        assert np.isfinite(dist).all()

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.ones((2, 2)), metric="hamming")


def purity(labels, truth):
    total = 0
    for cluster in np.unique(labels):
        members = truth[labels == cluster]
        counts = np.bincount(members)
        total += counts.max()
    return total / len(truth)


class TestAgglomerative:
    @pytest.mark.parametrize("linkage", ["single", "complete", "average", "ward"])
    def test_recovers_well_separated_blobs(self, linkage):
        vectors, truth = three_blobs()
        labels = AgglomerativeClustering(n_clusters=3, linkage=linkage).fit_predict(vectors)
        assert purity(labels, truth) == 1.0

    def test_cosine_metric_clusters_directions(self):
        vectors = np.array([[1.0, 0.01], [1.0, -0.01], [0.01, 1.0], [-0.01, 1.0]])
        labels = AgglomerativeClustering(n_clusters=2, metric="cosine").fit_predict(vectors)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_distance_threshold_cut(self):
        vectors, _ = three_blobs()
        model = AgglomerativeClustering(distance_threshold=3.0)
        labels = model.fit_predict(vectors)
        assert len(np.unique(labels)) == 3

    def test_n_clusters_one(self):
        vectors, _ = three_blobs()
        labels = AgglomerativeClustering(n_clusters=1).fit_predict(vectors)
        assert len(np.unique(labels)) == 1

    def test_n_clusters_equals_points(self):
        vectors = np.arange(8.0).reshape(4, 2)
        labels = AgglomerativeClustering(n_clusters=4).fit_predict(vectors)
        assert len(np.unique(labels)) == 4

    def test_singleton_dataset(self):
        labels = AgglomerativeClustering(n_clusters=1).fit_predict(np.ones((1, 2)))
        assert labels.tolist() == [0]

    def test_ward_requires_euclidean(self):
        with pytest.raises(ValueError):
            AgglomerativeClustering(n_clusters=2, linkage="ward", metric="cosine")

    def test_both_cut_criteria_rejected(self):
        with pytest.raises(ValueError):
            AgglomerativeClustering(n_clusters=2, distance_threshold=1.0)

    def test_neither_cut_criterion_rejected(self):
        with pytest.raises(ValueError):
            AgglomerativeClustering()

    def test_unknown_linkage(self):
        with pytest.raises(ValueError):
            AgglomerativeClustering(n_clusters=2, linkage="median")

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            AgglomerativeClustering(n_clusters=1).fit(np.zeros((0, 2)))

    def test_merge_distances_monotone_for_average_linkage(self):
        vectors, _ = three_blobs()
        model = AgglomerativeClustering(n_clusters=3, linkage="average")
        dendrogram = model.build_dendrogram(vectors)
        distances = [merge.distance for merge in dendrogram.merges]
        assert all(b >= a - 1e-9 for a, b in zip(distances, distances[1:]))

    def test_dendrogram_cut_validates_input(self):
        vectors, _ = three_blobs(points_per_blob=3)
        dendrogram = AgglomerativeClustering(n_clusters=2).build_dendrogram(vectors)
        with pytest.raises(ValueError):
            dendrogram.cut()
        with pytest.raises(ValueError):
            dendrogram.cut(n_clusters=0)
        with pytest.raises(ValueError):
            dendrogram.cut(n_clusters=2, distance_threshold=1.0)

    @given(npst.arrays(np.float64, st.tuples(st.integers(2, 12), st.just(3)),
                       elements=st.floats(-10, 10)))
    @settings(max_examples=30, deadline=None)
    def test_labels_partition_all_points(self, vectors):
        k = min(3, vectors.shape[0])
        labels = AgglomerativeClustering(n_clusters=k, linkage="complete").fit_predict(vectors)
        assert labels.shape == (vectors.shape[0],)
        assert set(labels.tolist()) == set(range(len(np.unique(labels))))


class TestSilhouette:
    def test_well_separated_high_score(self):
        vectors, truth = three_blobs()
        assert silhouette_score(vectors, truth) > 0.8

    def test_random_labels_lower_than_true(self):
        vectors, truth = three_blobs()
        shuffled = derive_rng("sil").permutation(truth)
        assert silhouette_score(vectors, truth) > silhouette_score(vectors, shuffled)

    def test_single_cluster_zero(self):
        vectors, _ = three_blobs()
        assert silhouette_score(vectors, np.zeros(len(vectors))) == 0.0

    def test_all_singletons_zero(self):
        vectors = np.arange(10.0).reshape(5, 2)
        assert silhouette_score(vectors, np.arange(5)) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            silhouette_score(np.ones((3, 2)), np.zeros(2))

    def test_bounded(self):
        vectors, truth = three_blobs(spread=3.0)
        score = silhouette_score(vectors, truth)
        assert -1.0 <= score <= 1.0

"""The engine boundary: registry, specs, failure modes, pickling.

Unit-level coverage of :mod:`repro.engines` — everything that must hold
*without* a live backend: the ``ENGINES`` registry contract, EngineSpec
validation and serialization, the ``openai_http`` retry/backoff loop
against a stubbed transport, protocol-error classification (dialect
mismatches never retry), and pickle round-trips of every engine-bearing
spec (the process-pool boundary re-resolves engines by name from plain
data).
"""

from __future__ import annotations

import http.client
import json
import pickle

import pytest

from repro.engines import (
    ChatEngineLLM,
    EngineError,
    EngineHarness,
    EngineProtocolError,
    EngineReply,
    OpenAIHttpEngine,
    build_engine_llm,
)
from repro.engines.testing import tool_call_message
from repro.llm.engine import SimulatedLLM
from repro.registry import ENGINES, register_engine
from repro.specs import AgentSpec, EngineSpec, ServingSpec, TenantSpec
from repro.suites import load_suite
from repro.tools.schema import ToolCall

MODEL, QUANT = "hermes2-pro-8b", "q4_K_M"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestEngineRegistry:
    def test_builtins_registered(self):
        assert "simulated" in ENGINES
        assert "openai_http" in ENGINES

    def test_unknown_engine_error_lists_registered(self):
        with pytest.raises(ValueError, match="simulated") as excinfo:
            ENGINES.get("llama_cpp_grpc")
        assert "openai_http" in str(excinfo.value)
        assert "llama_cpp_grpc" in str(excinfo.value)

    def test_unknown_engine_spec_lists_registered(self):
        with pytest.raises(ValueError, match="openai_http"):
            EngineSpec(name="definitely-not-an-engine")

    def test_simulated_factory_returns_simulated_llm(self):
        llm = build_engine_llm(EngineSpec(), MODEL, QUANT)
        assert isinstance(llm, SimulatedLLM)
        # same construction path as the engine-less default — the
        # bitwise-equivalence guarantee is structural, not incidental
        direct = SimulatedLLM.from_registry(MODEL, QUANT)
        assert llm.model is direct.model
        assert llm.quant is direct.quant

    def test_build_engine_llm_accepts_none_and_str(self):
        assert isinstance(build_engine_llm(None, MODEL, QUANT), SimulatedLLM)
        assert isinstance(build_engine_llm("simulated", MODEL, QUANT),
                          SimulatedLLM)

    def test_register_engine_plugin_roundtrip(self):
        @register_engine("unit-test-engine")
        def build(spec, model, quant):
            return ("built", spec.name, model, quant)

        try:
            llm = build_engine_llm(EngineSpec("unit-test-engine"),
                                   MODEL, QUANT)
            assert llm == ("built", "unit-test-engine", MODEL, QUANT)
        finally:
            ENGINES.unregister("unit-test-engine")


# ----------------------------------------------------------------------
# specs
# ----------------------------------------------------------------------
class TestEngineSpec:
    def test_openai_http_requires_base_url(self):
        with pytest.raises(ValueError, match="base_url"):
            EngineSpec(name="openai_http")

    def test_dict_roundtrip(self):
        spec = EngineSpec(name="openai_http", base_url="http://127.0.0.1:1/v1",
                          wire_model="qwen2.5-3b", api_key="sk-x",
                          timeout_s=5.0, retries=4, max_tokens=128)
        assert EngineSpec.from_dict(spec.to_dict()) == spec

    def test_agent_spec_coerces_engine_dict_and_str(self):
        by_dict = AgentSpec(engine={"name": "simulated"})
        by_str = AgentSpec(engine="simulated")
        assert by_dict.engine == by_str.engine == EngineSpec("simulated")

    def test_engine_absent_from_agent_kwargs(self):
        # the engine threads through SchemeContext, not the scheme factory
        spec = AgentSpec(engine=EngineSpec())
        assert "engine" not in spec.agent_kwargs()

    @pytest.mark.parametrize("build", [
        lambda e: AgentSpec(engine=e),
        lambda e: TenantSpec(name="t", suite="edgehome", engine=e),
        lambda e: ServingSpec(default_engine=e),
    ])
    def test_engine_bearing_specs_pickle_roundtrip(self, build):
        engine = EngineSpec(name="openai_http",
                            base_url="http://127.0.0.1:9999/v1",
                            retries=3)
        spec = build(engine)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.engine == engine if hasattr(clone, "engine") \
            else clone.default_engine == engine

    def test_serving_spec_dict_roundtrip_with_engines(self):
        spec = ServingSpec(
            tenants=(TenantSpec(name="t", suite="edgehome",
                                engine=EngineSpec("simulated")),),
            default_engine=EngineSpec(
                name="openai_http", base_url="http://127.0.0.1:9999/v1"))
        clone = ServingSpec.from_dict(spec.to_dict())
        assert clone == spec


# ----------------------------------------------------------------------
# transport failure modes (stubbed _post — no sockets, no sleeps)
# ----------------------------------------------------------------------
class _Response:
    def __init__(self, status: int, body):
        self.status = status
        self._body = body

    @property
    def text(self) -> str:
        return self._body if isinstance(self._body, str) \
            else json.dumps(self._body)

    def json(self):
        if isinstance(self._body, str):
            return json.loads(self._body)
        return self._body


def _engine(retries: int = 2, backoff_ms: float = 40.0) -> OpenAIHttpEngine:
    spec = EngineSpec(name="openai_http", base_url="http://127.0.0.1:1/v1",
                      timeout_s=0.5, retries=retries,
                      retry_backoff_ms=backoff_ms)
    engine = OpenAIHttpEngine(spec, wire_model="m")
    engine._sleep = lambda s: engine.sleeps.append(s)
    engine.sleeps = []
    return engine


def _completion(message: dict) -> dict:
    return {"choices": [{"index": 0, "message": message,
                         "finish_reason": "stop"}],
            "usage": {"prompt_tokens": 10, "completion_tokens": 5}}


class TestRetryLoop:
    def test_timeout_retries_then_actionable_error(self):
        engine = _engine(retries=2, backoff_ms=40.0)
        attempts = []

        def post(payload):
            attempts.append(payload)
            raise TimeoutError("timed out")

        engine._post = post
        with pytest.raises(EngineError) as excinfo:
            engine.generate([{"role": "user", "content": "hi"}], tools=[])
        message = str(excinfo.value)
        # actionable: endpoint, attempt budget, the knobs to turn, and
        # the underlying cause all in one line
        assert engine.endpoint in message
        assert "3 attempt(s)" in message
        assert "timeout_s=0.5" in message
        assert "retries=2" in message
        assert "TimeoutError" in message
        assert len(attempts) == 3
        # exponential backoff between attempts: 40ms then 80ms
        assert engine.sleeps == [0.04, 0.08]

    def test_retryable_status_then_success(self):
        engine = _engine(retries=2)
        responses = [_Response(503, {"error": "warming up"}),
                     _Response(200, _completion(tool_call_message(
                         "turn_on_light", {"room": "kitchen"})))]
        engine._post = lambda payload: responses.pop(0)
        reply = engine.generate([{"role": "user", "content": "hi"}], tools=[])
        assert reply.tool_calls == (
            ToolCall("turn_on_light", {"room": "kitchen"}),)
        assert engine.sleeps == [0.04]  # one backoff before the retry

    def test_non_retryable_4xx_fails_fast(self):
        engine = _engine(retries=5)
        calls = []

        def post(payload):
            calls.append(payload)
            return _Response(404, {"error": "no such model"})

        engine._post = post
        with pytest.raises(EngineError, match="HTTP 404"):
            engine.generate([{"role": "user", "content": "hi"}], tools=[])
        assert len(calls) == 1  # no retry budget spent on a client bug
        assert engine.sleeps == []

    def test_torn_response_is_retried(self):
        engine = _engine(retries=1)

        def post(payload):
            raise http.client.BadStatusLine("garbage")

        engine._post = post
        with pytest.raises(EngineError, match="BadStatusLine"):
            engine.generate([], tools=[])


class TestProtocolErrors:
    def test_non_json_200_body(self):
        engine = _engine()
        engine._post = lambda payload: _Response(200, "<html>not json</html>")
        with pytest.raises(EngineProtocolError, match="non-JSON 200"):
            engine.generate([], tools=[])
        assert engine.sleeps == []  # dialect mismatches never retry

    def test_missing_choices(self):
        engine = _engine()
        engine._post = lambda payload: _Response(200, {"result": "ok"})
        with pytest.raises(EngineProtocolError, match="choices"):
            engine.generate([], tools=[])

    def test_malformed_tool_call_arguments(self):
        engine = _engine()
        message = tool_call_message("turn_on_light", {},
                                    malformed_arguments=True)
        engine._post = lambda payload: _Response(200, _completion(message))
        with pytest.raises(EngineProtocolError, match="not valid JSON"):
            engine.generate([], tools=[])

    def test_malformed_tool_call_entry(self):
        engine = _engine()
        message = {"role": "assistant", "content": None,
                   "tool_calls": [{"function": {"arguments": "{}"}}]}
        engine._post = lambda payload: _Response(200, _completion(message))
        with pytest.raises(EngineProtocolError, match="malformed tool_calls"):
            engine.generate([], tools=[])

    def test_dict_arguments_accepted(self):
        # some shims (Ollama) send decoded dicts instead of JSON strings
        engine = _engine()
        message = {"role": "assistant", "content": None,
                   "tool_calls": [{"function": {
                       "name": "set_timer",
                       "arguments": {"minutes": 5}}}]}
        engine._post = lambda payload: _Response(200, _completion(message))
        reply = engine.generate([], tools=[])
        assert reply.tool_calls == (ToolCall("set_timer", {"minutes": 5}),)

    def test_base_url_must_be_plain_http_with_host(self):
        with pytest.raises(ValueError, match="plain http"):
            OpenAIHttpEngine(EngineSpec(name="openai_http",
                                        base_url="https://api.example/v1"))
        with pytest.raises(ValueError, match="host"):
            OpenAIHttpEngine(EngineSpec(name="openai_http", base_url="/v1"))


# ----------------------------------------------------------------------
# the agent-facing adapter over a scripted engine
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def suite():
    return load_suite("edgehome", n_queries=4)


def _adapter(*replies: EngineReply) -> ChatEngineLLM:
    spec = EngineSpec(name="openai_http", base_url="http://127.0.0.1:1/v1")
    harness = EngineHarness(replies=list(replies))
    return ChatEngineLLM(spec, MODEL, QUANT, engine=harness)


class TestChatEngineLLM:
    def test_execute_step_scores_against_gold(self, suite):
        query = suite.queries[0]
        gold = query.gold_calls[0]
        llm = _adapter(EngineReply(tool_calls=(gold,)))
        turn = llm.execute_step(query, 0, list(suite.registry), 16384)
        assert turn.call == gold
        assert turn.correct_tool
        assert not turn.signalled_error
        assert turn.tools_seen == tuple(t.name for t in suite.registry)

    def test_no_parseable_call_signals_error(self, suite):
        llm = _adapter(EngineReply(text="I cannot help with that."))
        turn = llm.execute_step(suite.queries[0], 0,
                                list(suite.registry), 16384)
        assert turn.call is None
        assert turn.signalled_error

    def test_error_signal_passthrough(self, suite):
        llm = _adapter(EngineReply(error_signal="tool not found"))
        turn = llm.execute_step(suite.queries[0], 0,
                                list(suite.registry), 16384)
        assert turn.call is None
        assert turn.signalled_error

    def test_usage_estimated_when_backend_omits_it(self, suite):
        llm = _adapter(EngineReply(text="chatter",
                                   tool_calls=(ToolCall("pause_media", {}),)))
        turn = llm.execute_step(suite.queries[0], 0,
                                list(suite.registry), 16384)
        assert turn.usage.prompt_tokens > 0

    def test_requires_presented_tools(self, suite):
        llm = _adapter()
        with pytest.raises(ValueError, match="at least one tool"):
            llm.execute_step(suite.queries[0], 0, [], 16384)

    def test_recommend_tools_parses_json_list(self, suite):
        llm = _adapter(EngineReply(text='["turn lights on", "set a timer"]'))
        output = llm.recommend_tools(suite.queries[0])
        assert output.descriptions == ("turn lights on", "set a timer")

    def test_recommend_tools_tolerates_prose(self, suite):
        llm = _adapter(EngineReply(text="- turn lights on\n- set a timer\n"))
        output = llm.recommend_tools(suite.queries[0])
        assert output.descriptions == ("turn lights on", "set a timer")

    def test_adapter_pickles_without_live_state(self):
        spec = EngineSpec(name="openai_http",
                          base_url="http://127.0.0.1:1/v1")
        llm = ChatEngineLLM(spec, MODEL, QUANT)
        clone = pickle.loads(pickle.dumps(llm))
        assert clone.name == llm.name
        assert clone.engine.endpoint == llm.engine.endpoint

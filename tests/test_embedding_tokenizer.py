"""Tests for repro.embedding.tokenizer."""

from hypothesis import given
from hypothesis import strategies as st

from repro.embedding.tokenizer import STOPWORDS, Tokenizer, stem


class TestStem:
    def test_plural(self):
        assert stem("tools") == "tool"

    def test_ing_with_dedoubling(self):
        assert stem("plotting") == "plot"

    def test_ing_plain(self):
        assert stem("translating") == "translat"

    def test_ies_to_y(self):
        assert stem("queries") == "query"

    def test_short_words_untouched(self):
        assert stem("map") == "map"
        assert stem("gas") == "gas"

    def test_does_not_overstem(self):
        # stem must keep >= 3 chars
        assert stem("les") == "les"

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=15))
    def test_stem_never_empty_and_is_prefixish(self, word):
        result = stem(word)
        assert result
        # stems only modify the tail of the word
        assert result[:2] == word[:2] or len(word) <= 2


class TestTokenizer:
    def test_lowercases_and_splits(self):
        tokens = Tokenizer(remove_stopwords=False, apply_stem=False).tokenize("Hello WORLD-42")
        assert tokens == ["hello", "world", "42"]

    def test_stopwords_removed(self):
        tokens = Tokenizer().tokenize("what is the weather in Paris")
        assert "the" not in tokens
        assert "weather" in tokens

    def test_stemming_applied(self):
        tokens = Tokenizer().tokenize("plotting datasets")
        assert "plot" in tokens
        assert "dataset" in tokens

    def test_empty_string(self):
        assert Tokenizer().tokenize("") == []

    def test_char_trigrams_padding(self):
        trigrams = Tokenizer().char_trigrams("map")
        assert "#ma" in trigrams
        assert "ap#" in trigrams

    def test_char_trigrams_skip_tiny_words(self):
        assert Tokenizer().char_trigrams("a") == ["#a#"]

    @given(st.text())
    def test_tokenize_never_returns_stopwords(self, text):
        tokens = Tokenizer(apply_stem=False).tokenize(text)
        assert not set(tokens) & STOPWORDS

"""Tests for repro.suites.augmentation."""

import pytest

from repro.suites.augmentation import AugmentationEngine
from repro.suites.bfcl import build_bfcl_suite
from repro.suites.geoengine import build_geoengine_suite
from repro.utils.rng import derive_rng


@pytest.fixture(scope="module")
def geo_suite():
    return build_geoengine_suite(n_queries=40, n_train=60)


@pytest.fixture(scope="module")
def geo_samples(geo_suite):
    return AugmentationEngine(geo_suite).generate()


class TestAugmentationEngine:
    def test_produces_samples(self, geo_samples):
        assert len(geo_samples) >= 30

    def test_deterministic(self, geo_suite):
        a = AugmentationEngine(geo_suite).generate()
        b = AugmentationEngine(geo_suite).generate()
        assert [s.text for s in a] == [s.text for s in b]

    def test_all_kinds_present(self, geo_samples):
        kinds = {sample.kind for sample in geo_samples}
        assert kinds == {"paraphrase", "permutation", "combination"}

    def test_tools_are_valid(self, geo_suite, geo_samples):
        for sample in geo_samples:
            assert sample.tools, sample.text
            for tool in sample.tools:
                assert tool in geo_suite.registry

    def test_rouge_band_enforced(self, geo_samples):
        for sample in geo_samples:
            assert 0.05 <= sample.rouge_to_source <= 0.95

    def test_combination_unions_tools(self, geo_samples):
        combos = [s for s in geo_samples if s.kind == "combination"]
        assert combos
        # at least one combination must span more tools than a single chain
        assert any(len(sample.tools) >= 5 for sample in combos)

    def test_permutation_changes_one_tool(self, geo_suite, geo_samples):
        by_qid = {q.qid: q for q in geo_suite.train_queries}
        perms = [s for s in geo_samples if s.kind == "permutation"]
        assert perms
        for sample in perms:
            source = by_qid[sample.source_qids[0]]
            original = set(dict.fromkeys(source.gold_tools))
            swapped = set(sample.tools)
            assert len(original ^ swapped) == 2  # exactly one out, one in

    def test_works_on_bfcl_too(self):
        suite = build_bfcl_suite(n_queries=20, n_train=60)
        samples = AugmentationEngine(suite).generate()
        assert len(samples) >= 30

    def test_paraphrase_changes_wording(self, geo_suite):
        engine = AugmentationEngine(geo_suite)
        rng = derive_rng("test-paraphrase")
        text = "plot the weather forecast for the region"
        paraphrase = engine.paraphrase_text(text, rng, substitution_rate=1.0)
        assert paraphrase != text

    def test_zero_rate_is_identity(self, geo_suite):
        engine = AugmentationEngine(geo_suite)
        rng = derive_rng("test-paraphrase-0")
        text = "plot the weather forecast"
        assert engine.paraphrase_text(text, rng, substitution_rate=0.0) == text

"""Tests for the shared agent loop: fallbacks, retries, accounting."""

import pytest

from repro.core.agent_base import DEFAULT_CONTEXT_WINDOW, FunctionCallingAgent, ToolPlan
from repro.core.levels import SearchLevelBuilder
from repro.core.pipeline import LessIsMoreAgent
from repro.embedding.cache import shared_embedder
from repro.llm import SimulatedLLM
from repro.llm.behavior import BehaviorCalibration
from repro.suites.bfcl import build_bfcl_suite
from repro.suites.geoengine import build_geoengine_suite


@pytest.fixture(scope="module")
def bfcl():
    return build_bfcl_suite(n_queries=20, n_train=40)


@pytest.fixture(scope="module")
def geo():
    return build_geoengine_suite(n_queries=12, n_train=40)


class FixedPlanAgent(FunctionCallingAgent):
    """Minimal concrete agent for exercising the base loop."""

    scheme = "fixed"

    def plan(self, query):
        return ToolPlan(tools=list(self.suite.registry),
                        context_window=DEFAULT_CONTEXT_WINDOW)


class TestBaseLoop:
    def test_base_plan_is_abstract(self, bfcl):
        agent = FunctionCallingAgent(
            llm=SimulatedLLM.from_registry("qwen2-7b", "q4_0"), suite=bfcl)
        with pytest.raises(NotImplementedError):
            agent.plan(bfcl.queries[0])

    def test_token_accounting_accumulates(self, bfcl):
        agent = FixedPlanAgent(
            llm=SimulatedLLM.from_registry("qwen2-7b", "q4_K_M"), suite=bfcl)
        episode = agent.run(bfcl.queries[0])
        assert episode.prompt_tokens > 1000  # 51 tool schemas
        assert episode.completion_tokens > 0
        assert episode.n_llm_calls >= 1

    def test_step_records_one_per_gold_call(self, geo):
        agent = FixedPlanAgent(
            llm=SimulatedLLM.from_registry("hermes2-pro-8b", "full"), suite=geo)
        for query in geo.queries[:4]:
            episode = agent.run(query)
            assert len(episode.steps) == query.n_steps

    def test_energy_time_power_consistency(self, bfcl):
        agent = FixedPlanAgent(
            llm=SimulatedLLM.from_registry("qwen2-7b", "q4_K_M"), suite=bfcl)
        episode = agent.run(bfcl.queries[1])
        assert episode.avg_power_w == pytest.approx(
            episode.energy_j / episode.time_s, rel=1e-6)


class TestFallbackMechanics:
    @pytest.fixture(scope="class")
    def error_prone_agent(self, geo):
        """An LLM tuned to signal errors constantly, forcing the fallback."""
        calibration = BehaviorCalibration(error_signal_base=5.0)
        llm = SimulatedLLM.from_registry("qwen2-1.5b", "q4_0")
        llm.calibration = calibration
        levels = SearchLevelBuilder(embedder=shared_embedder()).build(geo)
        return LessIsMoreAgent(llm=llm, suite=geo, levels=levels, k=3,
                               embedder=shared_embedder())

    def test_repeated_errors_trigger_level3_fallback(self, geo, error_prone_agent):
        episodes = [error_prone_agent.run(q) for q in geo.queries[:6]]
        assert any(episode.fallback_used for episode in episodes)

    def test_fallback_presents_all_tools(self, geo, error_prone_agent):
        for query in geo.queries[:6]:
            episode = error_prone_agent.run(query)
            if episode.fallback_used:
                assert episode.steps[-1].n_tools_presented == geo.n_tools
                break
        else:
            pytest.fail("no fallback episode found")

    def test_baselines_do_not_fall_back(self, geo):
        from repro.baselines import DefaultAgent

        calibration = BehaviorCalibration(error_signal_base=5.0)
        llm = SimulatedLLM.from_registry("qwen2-1.5b", "q4_0")
        llm.calibration = calibration
        agent = DefaultAgent(llm=llm, suite=geo)
        episodes = [agent.run(q) for q in geo.queries[:4]]
        assert not any(episode.fallback_used for episode in episodes)

    def test_error_steps_recorded_as_failures(self, geo):
        calibration = BehaviorCalibration(error_signal_base=5.0)
        llm = SimulatedLLM.from_registry("qwen2-1.5b", "q4_0")
        llm.calibration = calibration
        from repro.baselines import DefaultAgent

        agent = DefaultAgent(llm=llm, suite=geo)
        episodes = [agent.run(query) for query in geo.queries]
        error_steps = [step for episode in episodes for step in episode.steps
                       if step.tool_called is None]
        assert error_steps  # persistent error signalling leaves failed steps
        for episode in episodes:
            if any(step.tool_called is None for step in episode.steps):
                assert not episode.success


class TestRetrySemantics:
    def test_sequential_validation_errors_retried(self, geo):
        # count retried steps across a batch: chains see API feedback
        agent = FixedPlanAgent(
            llm=SimulatedLLM.from_registry("llama3.1-8b", "q4_0"), suite=geo)
        episodes = [agent.run(q) for q in geo.queries]
        assert any(step.retried for episode in episodes for step in episode.steps)

    def test_single_shot_not_retried_on_bad_args(self, bfcl):
        # BFCL grades the first call; a validation failure is terminal
        agent = FixedPlanAgent(
            llm=SimulatedLLM.from_registry("llama3.1-8b", "q4_0"), suite=bfcl)
        for query in bfcl.queries:
            episode = agent.run(query)
            for step in episode.steps:
                if step.correct_tool and not step.execution_ok:
                    assert not step.retried
                    return

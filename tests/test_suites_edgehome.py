"""Tests for the edgehome generalization suite."""

import pytest

from repro.suites import load_suite
from repro.suites.edgehome import build_edgehome_registry, build_edgehome_suite


@pytest.fixture(scope="module")
def suite():
    return build_edgehome_suite(n_queries=60)


class TestRegistry:
    def test_32_tools(self):
        assert len(build_edgehome_registry()) == 32

    def test_three_domains(self):
        assert set(build_edgehome_registry().categories) == {"home", "assistant", "media"}

    def test_no_collision_with_other_catalogs(self):
        from repro.suites.bfcl_catalog import build_bfcl_registry
        from repro.suites.geoengine_catalog import build_geoengine_registry

        edge = set(build_edgehome_registry().names)
        assert not edge & set(build_geoengine_registry().names)
        # a couple of generic assistant verbs may overlap with BFCL by
        # design (create_calendar_event vs create_event must NOT collide)
        assert not edge & set(build_bfcl_registry().names)


class TestQueries:
    def test_loadable_by_name(self):
        assert load_suite("edgehome", n_queries=5).name == "edgehome"

    def test_mixed_single_and_sequential(self, suite):
        singles = [q for q in suite.queries if not q.sequential]
        chains = [q for q in suite.queries if q.sequential]
        assert singles and chains
        assert all(q.n_steps == 1 for q in singles)
        assert all(2 <= q.n_steps <= 3 for q in chains)

    def test_gold_arguments_validate(self, suite):
        for query in suite.queries:
            for call in query.gold_calls:
                spec = suite.registry.get(call.tool)
                assert spec.validate_arguments(call.arguments) == [], query.qid

    def test_deterministic(self):
        a = build_edgehome_suite(n_queries=20)
        b = build_edgehome_suite(n_queries=20)
        assert [q.text for q in a.queries] == [q.text for q in b.queries]


class TestPipelineGeneralization:
    """The paper's adaptation claim: the unchanged pipeline works here."""

    def test_lis_runs_and_beats_default(self, suite):
        from repro.evaluation.runner import ExperimentRunner

        runner = ExperimentRunner(suite)
        default = runner.run("default", "qwen2-1.5b", "q4_K_M")
        lis = runner.run("lis-k3", "qwen2-1.5b", "q4_K_M")
        assert lis.summary.success_rate >= default.summary.success_rate
        assert lis.summary.mean_time_s < default.summary.mean_time_s
        assert lis.summary.mean_tools_presented < suite.n_tools / 2

    def test_level2_used_for_routines(self, suite):
        from repro.evaluation.runner import ExperimentRunner

        runner = ExperimentRunner(suite)
        run = runner.run("lis-k3", "hermes2-pro-8b", "q4_K_M")
        routine_episodes = [
            episode for episode, query in zip(run.episodes, suite.queries)
            if query.sequential
        ]
        # at least some multi-step routines route through cluster search
        assert any(episode.selected_level == 2 for episode in routine_episodes)

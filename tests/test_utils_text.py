"""Tests for repro.utils.text."""

from hypothesis import given
from hypothesis import strategies as st

from repro.utils.text import (
    normalize_whitespace,
    sentence_case,
    snake_to_words,
    truncate_words,
    words_to_snake,
)


class TestNormalizeWhitespace:
    def test_collapses_runs(self):
        assert normalize_whitespace("a  b\t c\n\nd") == "a b c d"

    def test_strips_ends(self):
        assert normalize_whitespace("  hi  ") == "hi"

    def test_empty(self):
        assert normalize_whitespace("") == ""

    @given(st.text())
    def test_idempotent(self, text):
        once = normalize_whitespace(text)
        assert normalize_whitespace(once) == once


class TestTruncateWords:
    def test_no_truncation_needed(self):
        assert truncate_words("one two", 5) == "one two"

    def test_truncates(self):
        assert truncate_words("a b c d", 2) == "a b"

    def test_zero_limit(self):
        assert truncate_words("a b", 0) == ""

    @given(st.text(), st.integers(min_value=0, max_value=20))
    def test_never_longer_than_limit(self, text, limit):
        assert len(truncate_words(text, limit).split()) <= limit


class TestCaseHelpers:
    def test_sentence_case(self):
        assert sentence_case("hello world") == "Hello world"

    def test_sentence_case_empty(self):
        assert sentence_case("   ") == ""

    def test_snake_to_words(self):
        assert snake_to_words("get_weather_info") == "get weather info"

    def test_words_to_snake(self):
        assert words_to_snake("Get the Weather!") == "get_the_weather"

    def test_round_trip_simple(self):
        assert words_to_snake(snake_to_words("plot_vqa_captions")) == "plot_vqa_captions"

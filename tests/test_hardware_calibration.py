"""Calibration pins against the paper's Table II anchor points.

These are the only tests allowed to encode absolute target numbers: they
keep future refactors of the device model honest about the anchor the
whole reproduction is normalised to (Llama3.1-8b-q4_K_M on the AGX Orin).
"""

import pytest

from repro.hardware import InferenceRequest, simulate_inference
from repro.llm import get_quant_spec
from repro.llm.tokens import AGENT_SYSTEM_TOKENS, tool_prompt_tokens
from repro.suites.geoengine_catalog import build_geoengine_registry


def geo_prompt_tokens(n_tools: int) -> int:
    registry = build_geoengine_registry()
    tools = list(registry)[:n_tools]
    return AGENT_SYSTEM_TOKENS + sum(tool_prompt_tokens(t) for t in tools) + 40


def trace_for(n_tools: int, window: int, output_tokens: int = 130):
    quant = get_quant_spec("q4_K_M")
    return simulate_inference(InferenceRequest(
        params_b=8.0,
        bits_per_weight=quant.bits_per_weight,
        prompt_tokens=geo_prompt_tokens(n_tools),
        generated_tokens=output_tokens,
        context_window=window,
        jitter_stream=f"cal-{n_tools}-{window}",
    ))


class TestTableIIAnchors:
    """Single-call scale checks; the full multi-call episode is checked
    end-to-end by benchmarks/bench_table2.py."""

    def test_full_pool_16k_call_duration_scale(self):
        # the 46-tool 16K episode costs ~30 s end-to-end in the paper;
        # the first (cold) turn of the chain must be 8-28 s, with later
        # turns far cheaper thanks to KV reuse
        trace = trace_for(46, 16384)
        assert 8.0 <= trace.total_s <= 28.0

    def test_full_pool_16k_power_scale(self):
        trace = trace_for(46, 16384)
        assert 24.0 <= trace.avg_power_w <= 31.0  # paper: 27 W

    def test_reduced_pool_8k_power_scale(self):
        trace = trace_for(19, 8192)
        assert 19.0 <= trace.avg_power_w <= 26.0  # paper: 22 W

    def test_time_ordering_matches_table(self):
        t_46_16 = trace_for(46, 16384).total_s
        t_19_16 = trace_for(19, 16384).total_s
        t_19_8 = trace_for(19, 8192).total_s
        assert t_46_16 > t_19_16 > t_19_8

    def test_window_only_drop_fraction(self):
        # paper: (16K,19) 20s -> (8K,19) 17s, a ~15% drop from the window
        t_19_16 = trace_for(19, 16384).total_s
        t_19_8 = trace_for(19, 8192).total_s
        drop = 1.0 - t_19_8 / t_19_16
        assert 0.05 <= drop <= 0.30

    def test_decode_rate_in_orin_band(self):
        # 8B q4 on the Orin decodes ~10-25 tok/s in practice
        trace = trace_for(19, 8192, output_tokens=100)
        rate = 100 / trace.decode_s
        assert 8.0 <= rate <= 30.0

    def test_memory_fits_the_board(self):
        trace = trace_for(46, 16384)
        assert trace.peak_memory_gb < 30.0


class TestBfclWindowRequirement:
    def test_51_tools_need_16k(self):
        # the paper runs default agents at 16K because the pool fits there
        from repro.llm.tokens import plan_agent_prompt
        from repro.suites.bfcl_catalog import build_bfcl_registry

        tools = list(build_bfcl_registry())
        assert plan_agent_prompt("q", tools, 16384).tools_truncated == ()
        assert plan_agent_prompt("q", tools, 8192).tools_truncated != ()

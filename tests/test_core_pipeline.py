"""Tests for the Less-is-More agent pipeline end-to-end."""

import pytest

from repro.core import LessIsMoreAgent
from repro.core.levels import SearchLevelBuilder
from repro.embedding.cache import shared_embedder
from repro.suites.bfcl import build_bfcl_suite
from repro.suites.geoengine import build_geoengine_suite


@pytest.fixture(scope="module")
def bfcl():
    return build_bfcl_suite(n_queries=40, n_train=60)


@pytest.fixture(scope="module")
def geo():
    return build_geoengine_suite(n_queries=30, n_train=60)


@pytest.fixture(scope="module")
def bfcl_levels(bfcl):
    return SearchLevelBuilder(embedder=shared_embedder()).build(bfcl)


@pytest.fixture(scope="module")
def geo_levels(geo):
    return SearchLevelBuilder(embedder=shared_embedder()).build(geo)


def make_agent(suite, levels, model="hermes2-pro-8b", quant="q4_K_M", **kwargs):
    from repro.llm import SimulatedLLM

    return LessIsMoreAgent(llm=SimulatedLLM.from_registry(model, quant),
                           suite=suite, levels=levels,
                           embedder=shared_embedder(), **kwargs)


class TestEpisodeStructure:
    def test_episode_fields(self, bfcl, bfcl_levels):
        agent = make_agent(bfcl, bfcl_levels)
        episode = agent.run(bfcl.queries[0])
        assert episode.scheme == "lis"
        assert episode.model == "hermes2-pro-8b"
        assert episode.quant == "q4_K_M"
        assert episode.selected_level in (1, 2, 3)
        assert len(episode.steps) == 1
        assert episode.time_s > 0
        assert episode.energy_j > 0
        assert episode.n_llm_calls >= 2  # recommender + agent call

    def test_deterministic_episode(self, bfcl, bfcl_levels):
        a = make_agent(bfcl, bfcl_levels).run(bfcl.queries[1])
        b = make_agent(bfcl, bfcl_levels).run(bfcl.queries[1])
        assert a.success == b.success
        assert a.time_s == b.time_s
        assert a.selected_level == b.selected_level

    def test_sequential_episode_has_chain_steps(self, geo, geo_levels):
        agent = make_agent(geo, geo_levels)
        query = geo.queries[0]
        episode = agent.run(query)
        assert len(episode.steps) == query.n_steps

    def test_success_implies_tool_accuracy(self, bfcl, bfcl_levels):
        agent = make_agent(bfcl, bfcl_levels)
        for query in bfcl.queries[:20]:
            episode = agent.run(query)
            if episode.success:
                assert episode.tool_accuracy

    def test_build_classmethod(self, bfcl):
        agent = LessIsMoreAgent.build("qwen2-7b", "q8_0", bfcl, k=5)
        assert agent.k == 5
        episode = agent.run(bfcl.queries[0])
        assert episode.steps


class TestPaperProperties:
    def test_lis_beats_default_on_success(self, bfcl, bfcl_levels):
        from repro.baselines import DefaultAgent
        from repro.llm import SimulatedLLM

        llm = SimulatedLLM.from_registry("llama3.1-8b", "q4_K_M")
        default = DefaultAgent(llm=llm, suite=bfcl)
        lis = make_agent(bfcl, bfcl_levels, model="llama3.1-8b")
        default_success = sum(default.run(q).success for q in bfcl.queries)
        lis_success = sum(lis.run(q).success for q in bfcl.queries)
        assert lis_success > default_success

    def test_lis_reduces_time_and_power(self, bfcl, bfcl_levels):
        from repro.baselines import DefaultAgent
        from repro.llm import SimulatedLLM

        llm = SimulatedLLM.from_registry("hermes2-pro-8b", "q4_K_M")
        default = DefaultAgent(llm=llm, suite=bfcl)
        lis = make_agent(bfcl, bfcl_levels)
        queries = bfcl.queries[:20]
        default_time = sum(default.run(q).time_s for q in queries)
        lis_time = sum(lis.run(q).time_s for q in queries)
        # paper: execution time reduced by up to 80% on BFCL
        assert lis_time < 0.6 * default_time

    def test_lis_presents_fewer_tools(self, bfcl, bfcl_levels):
        agent = make_agent(bfcl, bfcl_levels)
        for query in bfcl.queries[:10]:
            episode = agent.run(query)
            if episode.selected_level in (1, 2):
                assert episode.mean_tools_presented < bfcl.n_tools

    def test_level1_dominates_bfcl(self, bfcl, bfcl_levels):
        # paper Section IV: "in BFCL Search Level 1 yields higher
        # tool-matching scores"
        agent = make_agent(bfcl, bfcl_levels)
        levels = [agent.run(q).selected_level for q in bfcl.queries]
        assert levels.count(1) > len(levels) / 2

    def test_level2_share_higher_on_geoengine(self, bfcl, geo, bfcl_levels, geo_levels):
        # paper Section IV: "for GeoEngine it is Search Level 2"
        bfcl_agent = make_agent(bfcl, bfcl_levels)
        geo_agent = make_agent(geo, geo_levels)
        bfcl_l2 = sum(bfcl_agent.run(q).selected_level == 2 for q in bfcl.queries[:25])
        geo_l2 = sum(geo_agent.run(q).selected_level == 2 for q in geo.queries[:25])
        assert geo_l2 > bfcl_l2

    def test_reduced_window_used_on_levels_1_2(self, bfcl, bfcl_levels):
        agent = make_agent(bfcl, bfcl_levels)
        plan = agent.plan(bfcl.queries[0])
        if plan.level in (1, 2):
            assert plan.context_window == 8192

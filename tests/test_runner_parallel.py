"""Parallel run_grid must reproduce the sequential results exactly."""

import pytest

from repro.embedding.cache import CachedEmbedder
from repro.evaluation.runner import ExperimentRunner
from repro.suites import load_suite

SCHEMES = ["default", "lis-k3"]
MODELS = ["hermes2-pro-8b"]
QUANTS = ["q4_K_M", "q8_0"]


@pytest.fixture(scope="module")
def suite():
    return load_suite("edgehome", n_queries=8)


def run_grid(suite, max_workers):
    runner = ExperimentRunner(suite, embedder=CachedEmbedder())
    return runner.run_grid(SCHEMES, MODELS, QUANTS, max_workers=max_workers)


def summary_fingerprint(run):
    summary = run.summary
    return (
        summary.n_episodes,
        summary.success_rate,
        summary.tool_accuracy,
        summary.mean_tools_presented,
        summary.mean_time_s,
        summary.mean_energy_j,
    )


def test_parallel_matches_sequential(suite):
    sequential = run_grid(suite, max_workers=1)
    parallel = run_grid(suite, max_workers=4)
    assert set(sequential) == set(parallel)
    for key, run in sequential.items():
        assert summary_fingerprint(parallel[key]) == summary_fingerprint(run), key
        seq_steps = [(e.qid, [s.tool_called for s in e.steps]) for e in run.episodes]
        par_steps = [(e.qid, [s.tool_called for s in e.steps])
                     for e in parallel[key].episodes]
        assert seq_steps == par_steps


def test_grid_covers_all_cells(suite):
    results = run_grid(suite, max_workers=2)
    assert len(results) == len(SCHEMES) * len(MODELS) * len(QUANTS)
    for (scheme, model, quant), run in results.items():
        assert run.scheme == scheme
        assert run.model == model
        assert run.quant == quant
        assert len(run.episodes) == 8


def test_default_worker_count_runs(suite):
    results = ExperimentRunner(suite, embedder=CachedEmbedder()).run_grid(
        ["lis-k3"], MODELS, ["q4_K_M"])
    assert len(results) == 1

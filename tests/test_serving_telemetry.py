"""Direct unit tests for serving telemetry edge cases.

Telemetry was previously exercised only through the gateway; these tests
pin down the standalone behaviors — empty rings, single-sample
percentiles, ring-buffer overwrite, histogram boundaries — that a load
test would mask.
"""

from __future__ import annotations

import pytest

from repro.serving.telemetry import Telemetry, _Ring, percentile


# ----------------------------------------------------------------------
# percentile()
# ----------------------------------------------------------------------
def test_percentile_empty_sample_is_zero():
    assert percentile([], 50.0) == 0.0
    assert percentile([], 99.0) == 0.0


def test_percentile_single_sample_is_that_sample():
    for q in (0.0, 50.0, 95.0, 99.0, 100.0):
        assert percentile([7.25], q) == 7.25


def test_percentile_bounds_and_interpolation():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 100.0) == 4.0
    assert percentile(values, 50.0) == pytest.approx(2.5)
    # matches numpy.percentile's default linear interpolation
    np = pytest.importorskip("numpy")
    for q in (10.0, 37.5, 62.0, 95.0, 99.0):
        assert percentile(values, q) == pytest.approx(
            float(np.percentile(values, q)))


def test_percentile_is_order_independent():
    assert percentile([9.0, 1.0, 5.0], 50.0) == 5.0


def test_percentile_rejects_out_of_range_q():
    with pytest.raises(ValueError, match="percentile q"):
        percentile([1.0], -0.1)
    with pytest.raises(ValueError, match="percentile q"):
        percentile([1.0], 100.1)


# ----------------------------------------------------------------------
# _Ring
# ----------------------------------------------------------------------
def test_ring_below_capacity_keeps_everything():
    ring = _Ring(4)
    for value in (1.0, 2.0, 3.0):
        ring.push(value)
    assert ring.values() == [1.0, 2.0, 3.0]


def test_ring_overwrites_oldest_once_full():
    ring = _Ring(3)
    for value in (1.0, 2.0, 3.0, 4.0, 5.0):
        ring.push(value)
    # capacity bound holds and the oldest samples fell out
    assert sorted(ring.values()) == [3.0, 4.0, 5.0]
    for value in (6.0, 7.0, 8.0):
        ring.push(value)
    assert sorted(ring.values()) == [6.0, 7.0, 8.0]


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
def test_empty_snapshot_is_all_zeros():
    snapshot = Telemetry().snapshot()
    assert snapshot["requests_admitted"] == 0
    assert snapshot["requests_rejected"] == 0
    assert snapshot["requests_completed"] == 0
    assert snapshot["requests_failed"] == 0
    assert snapshot["n_batches"] == 0
    assert snapshot["mean_batch_size"] == 0.0
    assert snapshot["max_batch_size"] == 0
    assert snapshot["batch_size_histogram"] == {}
    assert snapshot["queue_depth_max"] == 0.0
    assert snapshot["latency_p50_ms"] == 0.0
    assert snapshot["latency_p99_ms"] == 0.0
    assert snapshot["latency_mean_ms"] == 0.0


def test_single_completion_percentiles_collapse_to_sample():
    telemetry = Telemetry()
    telemetry.record_completion(0.050)
    snapshot = telemetry.snapshot()
    assert snapshot["latency_p50_ms"] == pytest.approx(50.0)
    assert snapshot["latency_p95_ms"] == pytest.approx(50.0)
    assert snapshot["latency_p99_ms"] == pytest.approx(50.0)
    assert snapshot["latency_mean_ms"] == pytest.approx(50.0)


def test_failed_completions_not_counted_in_latency():
    telemetry = Telemetry()
    telemetry.record_completion(0.010, ok=True)
    telemetry.record_completion(9.999, ok=False)
    snapshot = telemetry.snapshot()
    assert snapshot["requests_completed"] == 1
    assert snapshot["requests_failed"] == 1
    assert snapshot["latency_p99_ms"] == pytest.approx(10.0)


def test_batch_histogram_boundaries_and_mean():
    telemetry = Telemetry()
    for size in (1, 1, 8, 32):
        telemetry.record_flush(size)
    snapshot = telemetry.snapshot()
    assert snapshot["n_batches"] == 4
    assert snapshot["max_batch_size"] == 32
    assert snapshot["batch_size_histogram"] == {"1": 2, "8": 1, "32": 1}
    assert snapshot["mean_batch_size"] == pytest.approx((1 + 1 + 8 + 32) / 4)


def test_queue_depth_tracking_and_rejections():
    telemetry = Telemetry()
    for depth in (1, 3, 2):
        telemetry.record_admission(depth)
    telemetry.record_rejection()
    snapshot = telemetry.snapshot()
    assert snapshot["requests_admitted"] == 3
    assert snapshot["requests_rejected"] == 1
    assert snapshot["queue_depth_max"] == 3.0
    assert snapshot["queue_depth_mean"] == pytest.approx(2.0)


def test_max_samples_bounds_latency_ring_but_not_counters():
    telemetry = Telemetry(max_samples=2)
    for i in range(5):
        telemetry.record_completion(float(i))
    snapshot = telemetry.snapshot()
    assert snapshot["requests_completed"] == 5  # counters stay exact
    # ring keeps only the 2 newest samples
    assert snapshot["latency_p50_ms"] == pytest.approx(3.5 * 1e3)


def test_max_samples_must_be_positive():
    with pytest.raises(ValueError, match="max_samples"):
        Telemetry(max_samples=0)


def test_batch_quarantine_counts_both_batch_and_requests():
    telemetry = Telemetry()
    telemetry.record_batch_quarantine(4)
    telemetry.record_batch_quarantine(2)
    snapshot = telemetry.snapshot()
    assert snapshot["batch_quarantines"] == 2
    # the argument is the quarantined batch's size, not ignored
    assert snapshot["quarantined_requests"] == 6


def test_snapshot_seq_and_uptime_progress():
    telemetry = Telemetry()
    first = telemetry.snapshot()
    second = telemetry.snapshot()
    assert (first["snapshot_seq"], second["snapshot_seq"]) == (1, 2)
    assert 0.0 <= first["uptime_s"] <= second["uptime_s"]
    # a fresh instance restarts the sequence (the scraper's restart signal)
    assert Telemetry().snapshot()["snapshot_seq"] == 1

"""Tests for repro.suites.rouge."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.suites.rouge import rouge_1, rouge_l

WORDS = st.lists(st.sampled_from("the cat sat on a mat dog ran fast".split()),
                 min_size=0, max_size=12).map(" ".join)


class TestRouge1:
    def test_identical(self):
        assert rouge_1("plot the captions", "plot the captions") == pytest.approx(1.0)

    def test_disjoint(self):
        assert rouge_1("alpha beta", "gamma delta") == 0.0

    def test_partial_overlap(self):
        score = rouge_1("the cat sat", "the dog sat")
        assert 0.0 < score < 1.0

    def test_empty_candidate(self):
        assert rouge_1("", "reference words") == 0.0

    def test_symmetric_f_measure(self):
        assert rouge_1("a b c", "a b") == pytest.approx(rouge_1("a b", "a b c"))


class TestRougeL:
    def test_identical(self):
        assert rouge_l("plot the captions", "plot the captions") == pytest.approx(1.0)

    def test_order_matters(self):
        in_order = rouge_l("a b c d", "a b c d")
        scrambled = rouge_l("d c b a", "a b c d")
        assert in_order > scrambled

    def test_subsequence_not_substring(self):
        # "a c" is a subsequence of "a b c"
        assert rouge_l("a c", "a b c") > 0.5

    def test_empty(self):
        assert rouge_l("", "") == 0.0

    @given(WORDS, WORDS)
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, a, b):
        assert 0.0 <= rouge_l(a, b) <= 1.0
        assert 0.0 <= rouge_1(a, b) <= 1.0

    @given(WORDS, WORDS)
    @settings(max_examples=60, deadline=None)
    def test_rouge_l_never_exceeds_rouge_1(self, a, b):
        # LCS matches are a subset of bag-of-words matches
        assert rouge_l(a, b) <= rouge_1(a, b) + 1e-12

"""Tests for repro.vectorstore.factory and metrics."""

import numpy as np
import pytest

from repro.vectorstore import FlatIndex, IVFIndex, index_factory
from repro.vectorstore.factory import dump_index, load_index
from repro.vectorstore.metrics import METRICS, get_metric


class TestFactory:
    def test_flat(self):
        assert isinstance(index_factory(8, "Flat"), FlatIndex)

    def test_ivf(self):
        index = index_factory(8, "IVF16")
        assert isinstance(index, IVFIndex)
        assert index.n_lists == 16

    def test_case_insensitive(self):
        assert isinstance(index_factory(8, "flat"), FlatIndex)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            index_factory(8, "HNSW32")

    def test_metric_forwarded(self):
        assert index_factory(8, "Flat", metric="l2").metric.name == "l2"


class TestSerialization:
    def test_flat_round_trip(self):
        index = FlatIndex(dim=3, metric="ip")
        index.add(np.eye(3), ids=[7, 8, 9])
        restored = load_index(dump_index(index))
        assert isinstance(restored, FlatIndex)
        assert restored.metric.name == "ip"
        assert restored.ids.tolist() == [7, 8, 9]
        result = restored.search_one(np.array([0.0, 1.0, 0.0]), k=1)
        assert result.top()[1] == 8

    def test_ivf_round_trip_preserves_config(self):
        index = IVFIndex(dim=2, n_lists=4, nprobe=2)
        index.add(np.random.default_rng(0).standard_normal((10, 2)))
        restored = load_index(dump_index(index))
        assert isinstance(restored, IVFIndex)
        assert restored.n_lists == 4
        assert restored.nprobe == 2
        assert len(restored) == 10

    def test_empty_index_round_trip(self):
        restored = load_index(dump_index(FlatIndex(dim=5)))
        assert len(restored) == 0
        assert restored.dim == 5

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            load_index('{"kind": "Mystery", "dim": 2}')


class TestMetrics:
    def test_registry_names(self):
        assert {"ip", "cosine", "l2"} == set(METRICS)

    def test_get_metric_passthrough(self):
        metric = METRICS["l2"]
        assert get_metric(metric) is metric

    def test_get_metric_unknown(self):
        with pytest.raises(ValueError):
            get_metric("manhattan")

    def test_cosine_zero_vector_safe(self):
        scores = METRICS["cosine"].score(np.zeros((1, 2)), np.ones((1, 2)))
        assert np.isfinite(scores).all()

    def test_l2_nonnegative(self):
        queries = np.random.default_rng(1).standard_normal((3, 4))
        vectors = np.random.default_rng(2).standard_normal((5, 4))
        assert (METRICS["l2"].score(queries, vectors) >= 0).all()

    def test_ip_matches_matmul(self):
        queries = np.random.default_rng(3).standard_normal((2, 4))
        vectors = np.random.default_rng(4).standard_normal((3, 4))
        np.testing.assert_allclose(METRICS["ip"].score(queries, vectors), queries @ vectors.T)

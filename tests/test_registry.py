"""Plugin registries: registration, resolution, actionable errors."""

import pytest

from repro.registry import (
    CATALOGS,
    GRID_BACKENDS,
    SCHEMES,
    SERVING_BACKENDS,
    SUITES,
    Registry,
    SchemeContext,
    build_scheme,
    register_catalog,
    register_scheme,
    register_suite,
    resolve_scheme,
)
from repro.suites import load_suite


class TestRegistryCore:
    def test_register_and_get(self):
        registry = Registry("thing")
        registry.register("a", 1)
        assert registry.get("a") == 1
        assert "a" in registry
        assert registry.names() == ["a"]

    def test_names_are_case_insensitive(self):
        registry = Registry("thing")
        registry.register("MiXeD", "x")
        assert registry.get("mixed") == "x"
        assert "MIXED" in registry

    def test_decorator_form(self):
        registry = Registry("thing")

        @registry.register("fn")
        def fn():
            return 42

        assert registry.get("fn") is fn

    def test_unknown_name_lists_registered(self):
        registry = Registry("widget")
        registry.register("alpha", 1)
        registry.register("beta", 2)
        with pytest.raises(ValueError) as excinfo:
            registry.get("gamma")
        message = str(excinfo.value)
        assert "unknown widget 'gamma'" in message
        assert "alpha" in message and "beta" in message
        assert not isinstance(excinfo.value, KeyError)

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("a", 1)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("a", 2)
        registry.register("a", 2, replace=True)
        assert registry.get("a") == 2

    def test_unregister(self):
        registry = Registry("thing")
        registry.register("a", 1)
        registry.unregister("a")
        assert "a" not in registry


class TestBuiltins:
    def test_builtin_loading_from_cold_interpreter(self):
        """Listing a registry must self-import its builtins without
        deadlocking (registration re-enters the registry lock during the
        lazy import)."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        code = ("from repro.registry import GRID_BACKENDS, SCHEMES; "
                "print(','.join(GRID_BACKENDS.names())); "
                "print(','.join(SCHEMES.names()))")
        src = str(Path(__file__).resolve().parent.parent / "src")
        out = subprocess.run([sys.executable, "-c", code],
                             env=dict(os.environ, PYTHONPATH=src),
                             capture_output=True, text=True, timeout=120,
                             check=True)
        backends, schemes = out.stdout.strip().splitlines()
        assert backends == "process,sequential,thread"
        assert schemes == "default,gorilla,lis,toolllm"

    def test_builtin_schemes_present(self):
        for name in ("default", "gorilla", "toolllm", "lis"):
            assert name in SCHEMES

    def test_builtin_suites_present(self):
        for name in ("bfcl", "geoengine", "edgehome"):
            assert name in SUITES

    def test_builtin_grid_backends_present(self):
        for name in ("sequential", "thread", "process"):
            assert name in GRID_BACKENDS

    def test_builtin_serving_backends_present(self):
        for name in ("thread", "process"):
            assert name in SERVING_BACKENDS

    def test_builtin_catalogs_present(self):
        for name in ("bfcl", "geoengine", "edgehome"):
            assert name in CATALOGS

    def test_register_catalog_decorator(self):
        @register_catalog("test-extra-catalog")
        def build():
            from repro.tools.catalog import ToolCatalog
            from repro.tools.schema import ToolSpec

            return ToolCatalog("test-extra-catalog",
                               (ToolSpec("ping", "Ping the thing."),))

        try:
            assert "test-extra-catalog" in CATALOGS
            assert CATALOGS.get("test-extra-catalog") is build
        finally:
            CATALOGS.unregister("test-extra-catalog")

    def test_unknown_catalog_error_lists_names(self):
        with pytest.raises(ValueError, match="registered catalogs:.*bfcl"):
            CATALOGS.get("nope")


class TestSchemeResolution:
    def test_exact_name(self):
        factory, implied = resolve_scheme("default")
        assert implied == {}
        assert callable(factory)

    def test_parameterized_k_suffix(self):
        factory, implied = resolve_scheme("lis-k7")
        assert implied == {"k": 7}
        assert factory is resolve_scheme("lis")[0]

    def test_unknown_scheme_error_lists_names(self):
        with pytest.raises(ValueError) as excinfo:
            resolve_scheme("react")
        message = str(excinfo.value)
        assert "unknown scheme 'react'" in message
        for name in ("default", "gorilla", "lis", "toolllm"):
            assert name in message

    def test_build_scheme_applies_implied_k(self):
        suite = load_suite("edgehome", n_queries=4)
        agent = build_scheme("lis-k5", "hermes2-pro-8b", "q4_K_M",
                             SchemeContext(suite=suite))
        assert agent.k == 5

    def test_build_scheme_conflicting_k_rejected(self):
        """lis-k5 + explicit k=2 would run mislabeled — refuse it."""
        suite = load_suite("edgehome", n_queries=4)
        with pytest.raises(ValueError, match="implies k=5"):
            build_scheme("lis-k5", "hermes2-pro-8b", "q4_K_M",
                         SchemeContext(suite=suite), k=2)

    def test_build_scheme_agreeing_k_accepted(self):
        suite = load_suite("edgehome", n_queries=4)
        agent = build_scheme("lis-k5", "hermes2-pro-8b", "q4_K_M",
                             SchemeContext(suite=suite), k=5)
        assert agent.k == 5


class TestSchemeContext:
    def test_context_builds_levels_on_demand(self):
        suite = load_suite("edgehome", n_queries=4)
        context = SchemeContext(suite=suite)
        levels = context.levels
        assert levels.n_clusters >= 1
        assert context.levels is levels  # memoized

    def test_context_prefers_levels_fn(self):
        sentinel = object()
        context = SchemeContext(suite=None, levels_fn=lambda: sentinel)
        assert context.levels is sentinel


class TestThirdPartyPlugins:
    def test_custom_scheme_runs_through_session(self):
        from repro import AgentSpec, open_session
        from repro.baselines.default_agent import DefaultAgent

        class EagerAgent(DefaultAgent):
            scheme = "eager"

        @register_scheme("eager")
        def build_eager(model, quant, context, **kwargs):
            from repro.llm import SimulatedLLM

            llm = SimulatedLLM.from_registry(model, quant)
            return EagerAgent(llm=llm, suite=context.suite, **kwargs)

        try:
            session = open_session("edgehome", n_queries=3)
            run = session.run(AgentSpec(scheme="eager", model="hermes2-pro-8b",
                                        quant="q4_K_M"))
            assert [e.scheme for e in run.episodes] == ["eager"] * 3
        finally:
            SCHEMES.unregister("eager")

    def test_custom_suite_loads_by_name(self):
        base = load_suite("edgehome", n_queries=3)

        @register_suite("tiny-home")
        def build_tiny(n_queries=None, seed=None):
            return base

        try:
            from repro import open_session

            session = open_session("tiny-home")
            assert session.suite is base
        finally:
            SUITES.unregister("tiny-home")

    def test_custom_grid_backend_dispatches(self):
        from repro.evaluation.runner import ExperimentRunner
        from repro.registry import register_grid_backend

        calls = []

        @register_grid_backend("recording")
        def recording(runner, cells, n_queries, max_workers):
            calls.append(list(cells))
            return [runner.run(*cell, n_queries=n_queries) for cell in cells]

        try:
            runner = ExperimentRunner(load_suite("edgehome", n_queries=2))
            results = runner.run_grid(["default"], ["hermes2-pro-8b"],
                                      ["q4_K_M", "q8_0"], backend="recording",
                                      max_workers=4)
            assert len(results) == 2
            assert calls and len(calls[0]) == 2
        finally:
            GRID_BACKENDS.unregister("recording")

"""The carbon/power budget controller: ladder, power modes, composition.

The acceptance criteria of the ``repro.power`` subsystem live here:

- a tight joule budget measurably reduces mean energy per request versus
  an uncontrolled gateway while goodput stays above zero;
- every episode served at a rung is bitwise identical to the same query
  served by an uncontrolled gateway pinned at that rung's configuration
  (the accounting layer never leaks into episode bits);
- the budget and queue-pressure controllers compose through the shared
  :class:`~repro.serving.degrade.LadderArbiter` without oscillating.
"""

from __future__ import annotations

import asyncio
import dataclasses
from pathlib import Path

import pytest

from repro.power import BudgetController, BudgetPolicy, MODE_LADDER
from repro.power.signals import StaticSignal
from repro.serving import (
    DegradationPolicy,
    Gateway,
    ServingConfig,
    SessionManager,
    TenantShedError,
)
from repro.specs import BudgetSpec
from repro.suites import load_suite

COMMITTED_TRACE = (Path(__file__).resolve().parent.parent
                   / "benchmarks" / "data" / "grid_intensity_day.csv")

#: how an uncontrolled gateway reproduces each ladder rung:
#: (catalog variant, scheme override)
RUNG_SETUPS = {
    "full": ("full", None),
    "compressed": ("compressed", None),
    "minimal": ("minimal", None),
    "reduced-k": ("minimal", "lis-k1"),
}


def test_budget_policy_validation():
    with pytest.raises(ValueError, match="at least one control"):
        BudgetPolicy()
    with pytest.raises(ValueError):
        BudgetPolicy(energy_budget_j=0.0)
    with pytest.raises(ValueError):
        BudgetPolicy(carbon_budget_g=-1.0)
    with pytest.raises(ValueError):
        BudgetPolicy(energy_budget_j=1.0, window_requests=0)
    with pytest.raises(ValueError):
        BudgetPolicy(energy_budget_j=1.0, settle_requests=0)
    with pytest.raises(ValueError):
        BudgetPolicy(energy_budget_j=1.0, recovery_ticks=0)
    with pytest.raises(ValueError):
        BudgetPolicy(energy_budget_j=1.0, recovery_margin=1.5)
    with pytest.raises(ValueError):
        BudgetPolicy(intensity_high=-10.0)
    with pytest.raises(ValueError, match="requires intensity_high"):
        BudgetPolicy(energy_budget_j=1.0, intensity_low=100.0)
    with pytest.raises(ValueError):
        BudgetPolicy(intensity_high=400.0, intensity_low=500.0)
    with pytest.raises(ValueError, match="min_power_mode"):
        BudgetPolicy(energy_budget_j=1.0, min_power_mode="1W")
    with pytest.raises(ValueError):
        BudgetPolicy(energy_budget_j=1.0, interval_ms=0.0)
    # defaults: settle window fills, intensity_low derives from the margin
    policy = BudgetPolicy(energy_budget_j=5.0, window_requests=16,
                          intensity_high=500.0)
    assert policy.settle_requests == 16
    assert policy.intensity_low == pytest.approx(400.0)
    assert policy.interval_s == pytest.approx(0.1)
    # and the spec round-trips into the same policy
    spec = BudgetSpec(energy_budget_j=5.0, window_requests=16,
                      intensity_high=500.0)
    assert BudgetPolicy.from_spec(spec) == policy


async def _run_pinned(suite, rung):
    """Serve every suite query once on a gateway pinned at ``rung``'s
    configuration; returns (episodes-by-qid, mean energy per request)."""
    variant, scheme = RUNG_SETUPS[rung]
    served = suite if variant == "full" else suite.with_catalog(
        suite.catalog.at(variant))
    sessions = SessionManager()
    sessions.register("home", served)
    config = ServingConfig(max_batch_size=4, max_wait_ms=1.0)
    async with Gateway(sessions, config=config) as gateway:
        if scheme is not None:
            gateway.set_scheme_override("home", scheme)
        episodes = {}
        for query in suite.queries:
            response = await gateway.submit("home", query)
            episodes[query.qid] = response.episode
        energy_j = gateway.metrics()["energy_j_by_tenant"]["home"]
    return episodes, energy_j / len(suite.queries)


def test_energy_budget_reduces_energy_with_bitwise_identity():
    """The headline acceptance test: a tight budget walks the tenant down
    the ladder, mean energy per request drops versus uncontrolled, goodput
    stays positive, and every wave's episodes are bitwise identical to the
    same rung's uncontrolled configuration."""
    suite = load_suite("edgehome", n_queries=6)

    async def scenario():
        pinned = {rung: await _run_pinned(suite, rung)
                  for rung in RUNG_SETUPS}
        means = {rung: mean for rung, (_, mean) in pinned.items()}
        # sanity on the physics this test leans on: each rung is cheaper,
        # and reduced-k is where the big token savings land
        assert means["reduced-k"] < means["minimal"] < means["full"]

        # budget between minimal and reduced-k: the controller must
        # descend exactly to reduced-k and hold there (the 5% headroom
        # keeps reduced-k inside the hysteresis band, not under
        # budget * recovery_margin, so it cannot climb back and flap)
        budget_j = means["reduced-k"] * 1.05
        assert means["minimal"] > budget_j
        spec = BudgetSpec(energy_budget_j=budget_j, window_requests=6,
                          settle_requests=6, recovery_ticks=2,
                          interval_ms=600_000.0)
        sessions = SessionManager()
        sessions.register("home", suite)
        config = ServingConfig(max_batch_size=4, max_wait_ms=1.0,
                               budget=spec)
        waves = []
        async with Gateway(sessions, config=config) as gateway:
            assert isinstance(gateway.budget, BudgetController)
            for _ in range(6):
                rung = gateway.rung("home")
                episodes = {}
                for query in suite.queries:
                    response = await gateway.submit("home", query)
                    episodes[query.qid] = response.episode
                waves.append((rung, episodes))
                gateway.budget.tick(now_s=0.0)
            metrics = gateway.metrics()
            assert gateway.rung_source("home") == "budget"
            status = gateway.budget.status()
            assert status["tenants"]["home"]["effective_rung"] == "reduced-k"

        # one rung per full window, then a stable hold at reduced-k
        assert [rung for rung, _ in waves] == [
            "full", "compressed", "minimal",
            "reduced-k", "reduced-k", "reduced-k"]

        # goodput never hit zero: every submission was served
        n_requests = 6 * len(suite.queries)
        assert metrics["requests_completed"] == n_requests
        assert metrics["shed_requests"] == 0

        # no oscillation: exactly three moves, all downward
        assert metrics["budget_transitions"] == 3
        assert metrics["budget_transitions_detail"] == {
            "home:down:compressed": 1,
            "home:down:minimal": 1,
            "home:down:reduced-k": 1,
        }
        assert metrics["degrade_transitions"] == 3

        # bitwise identity: every episode equals the one an uncontrolled
        # gateway pinned at that wave's rung produces for the same query
        for rung, episodes in waves:
            reference = pinned[rung][0]
            for qid, episode in episodes.items():
                assert dataclasses.asdict(episode) == dataclasses.asdict(
                    reference[qid]), (rung, qid)

        # the controlled run spent measurably less than uncontrolled-full
        controlled_mean = metrics["energy_j"] / n_requests
        assert controlled_mean < 0.9 * means["full"]
        # and carbon attribution followed energy through the ledger
        assert metrics["carbon_g"] == pytest.approx(
            metrics["energy_j"] / 3.6e6 * 400.0)

    asyncio.run(scenario())


def test_budget_and_pressure_compose_without_oscillation():
    """Two controllers over one ladder: the deeper desire wins, a
    disagreeing controller moves nothing, and repeated pressure swings
    around a budget-pinned rung produce zero transitions."""
    suite = load_suite("edgehome", n_queries=2)
    degradation = DegradationPolicy(queue_high=4, queue_low=0,
                                    recovery_ticks=2,
                                    reduced_k_scheme="lis-k1")

    async def scenario():
        sessions = SessionManager()
        sessions.register("home", suite)
        spec = BudgetSpec(energy_budget_j=1e-6, window_requests=2,
                          settle_requests=2, recovery_ticks=2,
                          interval_ms=600_000.0)
        config = ServingConfig(max_batch_size=4, max_wait_ms=1.0,
                               budget=spec)
        async with Gateway(sessions, config=config,
                           degradation=degradation) as gateway:
            for query in suite.queries:
                await gateway.submit("home", query)
            # an impossible budget pins the tenant one rung down
            gateway.budget.tick(now_s=0.0)
            assert gateway.rung("home") == "compressed"
            assert gateway.rung_source("home") == "budget"
            pinned = gateway.metrics()["degrade_transitions"]

            # pressure swings around the pinned rung: no transitions
            pressure = gateway.degradation
            for _ in range(3):
                pressure.tick(depth=100)   # pressure also wants rung 1
                assert gateway.rung("home") == "compressed"
                assert gateway.rung_source("home") == "budget+pressure"
                pressure.tick(depth=0)     # …and recovers again
                pressure.tick(depth=0)
                assert gateway.rung("home") == "compressed"
                assert gateway.rung_source("home") == "budget"
            assert gateway.metrics()["degrade_transitions"] == pinned

            # pressure pushing deeper than the budget still wins…
            pressure.tick(depth=100)
            pressure.tick(depth=100)
            assert gateway.rung("home") == "minimal"
            assert gateway.rung_source("home") == "pressure"
            # …and recovery stops at the budget's floor, not at full
            for _ in range(4):
                pressure.tick(depth=0)
            assert gateway.rung("home") == "compressed"
            assert gateway.rung_source("home") == "budget"

            # only when the budget releases does the tenant reach full
            gateway.ladder.release("budget", "home")
            assert gateway.rung("home") == "full"
            assert gateway.rung_source("home") == "none"

            # total motion: pin down, excursion down+up, release up — a
            # bounded count is the no-oscillation guarantee
            assert gateway.metrics()["degrade_transitions"] == 4

    asyncio.run(scenario())


def test_intensity_steps_power_mode_with_hysteresis():
    """High grid intensity walks MAXN -> 30W -> 15W; climbing back needs
    ``recovery_ticks`` consecutive low readings, and the in-between band
    restarts the streak."""
    suite = load_suite("edgehome", n_queries=2)

    async def scenario():
        sessions = SessionManager()
        sessions.register("home", suite)
        spec = BudgetSpec(intensity_high=450.0, intensity_low=300.0,
                          recovery_ticks=2, signal="trace",
                          trace_path=str(COMMITTED_TRACE),
                          interval_ms=600_000.0)
        config = ServingConfig(max_batch_size=4, max_wait_ms=1.0,
                               budget=spec)
        async with Gateway(sessions, config=config) as gateway:
            controller = gateway.budget
            evening = 20 * 3600.0   # duck-curve peak, > intensity_high
            midday = 13 * 3600.0    # solar dip, < intensity_low
            morning = 7 * 3600.0    # ramp, inside the hysteresis band

            assert gateway.power_mode() == "MAXN"
            controller.tick(now_s=evening)
            assert controller.power_mode == "30W"
            controller.tick(now_s=evening)
            assert controller.power_mode == "15W"
            controller.tick(now_s=evening)   # clamped at min_power_mode
            assert controller.power_mode == "15W"

            # recovery: one low tick is not enough…
            controller.tick(now_s=midday)
            assert controller.power_mode == "15W"
            controller.tick(now_s=midday)
            assert controller.power_mode == "30W"
            # …and an in-between reading restarts the streak
            controller.tick(now_s=morning)
            controller.tick(now_s=midday)
            assert controller.power_mode == "30W"
            controller.tick(now_s=midday)
            assert controller.power_mode == "MAXN"
            assert gateway.power_mode() == "MAXN"

            # the meter followed every move; telemetry counted each one
            detail = gateway.metrics()["budget_transitions_detail"]
            assert detail == {
                "device:down:30W": 1, "device:down:15W": 1,
                "device:up:30W": 1, "device:up:MAXN": 1,
            }

            # a MAXN-pinned policy never leaves the top mode
            pinned = BudgetController(
                gateway,
                BudgetPolicy(intensity_high=450.0, min_power_mode="MAXN"),
                meter=gateway.power_meter, signal=StaticSignal(999.0))
            pinned.tick(now_s=0.0)
            assert pinned.power_mode == "MAXN"
            assert gateway.power_mode() == "MAXN"
            assert (gateway.metrics()["budget_transitions_detail"]
                    == detail)

    asyncio.run(scenario())


def test_shed_probation_recovers_a_shed_tenant():
    """An impossible budget walks a tenant to shed; because a shed tenant
    produces no fresh evidence, probation steps it back up after
    ``recovery_ticks`` quiet ticks instead of deadlocking."""
    suite = load_suite("edgehome", n_queries=1)

    async def scenario():
        sessions = SessionManager()
        sessions.register("home", suite)
        spec = BudgetSpec(energy_budget_j=1e-6, window_requests=1,
                          settle_requests=1, recovery_ticks=2,
                          interval_ms=600_000.0)
        config = ServingConfig(max_batch_size=2, max_wait_ms=1.0,
                               budget=spec)
        async with Gateway(sessions, config=config) as gateway:
            query = suite.queries[0]
            descent = []
            for _ in range(4):
                await gateway.submit("home", query)
                gateway.budget.tick(now_s=0.0)
                descent.append(gateway.rung("home"))
            assert descent == ["compressed", "minimal", "reduced-k", "shed"]
            with pytest.raises(TenantShedError):
                await gateway.submit("home", query)

            # probation: quiet ticks count toward one step back up
            gateway.budget.tick(now_s=0.0)
            assert gateway.rung("home") == "shed"
            gateway.budget.tick(now_s=0.0)
            assert gateway.rung("home") == "reduced-k"

            # the tenant serves again (degraded, but alive)
            response = await gateway.submit("home", query)
            assert response.episode.qid == query.qid
            detail = gateway.metrics()["budget_transitions_detail"]
            assert detail["home:down:shed"] == 1
            assert detail["home:up:reduced-k"] == 1

    asyncio.run(scenario())


def test_budget_status_surface():
    """``Gateway.budget_status`` exposes the spent window and the budgets
    so the HTTP status endpoint can render them."""
    suite = load_suite("edgehome", n_queries=2)

    async def scenario():
        sessions = SessionManager()
        sessions.register("home", suite)
        spec = BudgetSpec(energy_budget_j=1e6, carbon_budget_g=1e6,
                          window_requests=4, interval_ms=600_000.0)
        config = ServingConfig(max_batch_size=4, max_wait_ms=1.0,
                               budget=spec)
        async with Gateway(sessions, config=config) as gateway:
            empty = gateway.budget_status("home")
            assert empty["window_requests"] == 0
            for query in suite.queries:
                await gateway.submit("home", query)
            status = gateway.budget_status("home")
            assert status["window_requests"] == 2
            assert status["window_energy_j"] > 0.0
            assert status["window_carbon_g"] > 0.0
            assert status["mean_energy_j"] == pytest.approx(
                status["window_energy_j"] / 2)
            assert status["energy_budget_j"] == 1e6
            assert status["carbon_budget_g"] == 1e6
            # a budget-less gateway still meters, but advertises no caps
            assert MODE_LADDER[0] == gateway.power_mode() == "MAXN"

    asyncio.run(scenario())


def test_unbudgeted_gateway_still_meters():
    """Every gateway runs the EnergyMeter; the controller is opt-in."""
    suite = load_suite("edgehome", n_queries=1)

    async def scenario():
        sessions = SessionManager()
        sessions.register("home", suite)
        config = ServingConfig(max_batch_size=2, max_wait_ms=1.0)
        async with Gateway(sessions, config=config) as gateway:
            assert gateway.budget is None
            await gateway.submit("home", suite.queries[0])
            metrics = gateway.metrics()
            assert metrics["energy_j_by_tenant"]["home"] > 0.0
            assert metrics["carbon_g_by_tenant"]["home"] > 0.0
            status = gateway.budget_status("home")
            assert status["window_requests"] == 1
            assert "energy_budget_j" not in status

    asyncio.run(scenario())

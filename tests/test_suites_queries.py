"""Tests for the suite query generators."""

import pytest

from repro.suites import load_suite
from repro.suites.base import BenchmarkSuite, Query
from repro.suites.bfcl import build_bfcl_suite, generate_bfcl_queries
from repro.suites.geoengine import build_geoengine_suite, generate_geoengine_queries
from repro.tools.schema import ToolCall


class TestLoadSuite:
    def test_names(self):
        assert load_suite("bfcl", n_queries=5).name == "bfcl"
        assert load_suite("GEOENGINE", n_queries=5).name == "geoengine"

    def test_unknown(self):
        with pytest.raises(ValueError):
            load_suite("toolbench")

    def test_default_batch_is_paper_230(self):
        assert len(load_suite("bfcl").queries) == 230


class TestQueryDataclass:
    def test_empty_gold_calls_rejected(self):
        with pytest.raises(ValueError):
            Query(qid="q", text="t", category="c", gold_calls=())

    def test_gold_tools_order(self):
        query = Query("q", "t", "c", (ToolCall("a"), ToolCall("b")))
        assert query.gold_tools == ("a", "b")
        assert query.n_steps == 2


class TestBfclSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return build_bfcl_suite(n_queries=120)

    def test_single_call_queries(self, suite):
        assert all(query.n_steps == 1 for query in suite.queries)
        assert not suite.sequential

    def test_gold_tools_exist_in_registry(self, suite):
        for query in suite.queries:
            assert query.gold_tools[0] in suite.registry

    def test_gold_arguments_validate(self, suite):
        for query in suite.queries:
            spec = suite.registry.get(query.gold_tools[0])
            assert spec.validate_arguments(query.gold_calls[0].arguments) == [], query.qid

    def test_deterministic_generation(self):
        a = generate_bfcl_queries(40, seed=0, split="eval")
        b = generate_bfcl_queries(40, seed=0, split="eval")
        assert [q.text for q in a] == [q.text for q in b]

    def test_train_eval_disjoint_texts(self, suite):
        eval_texts = {q.text for q in suite.queries}
        train_texts = {q.text for q in suite.train_queries}
        # different RNG streams: overlap should be rare, not total
        assert len(eval_texts & train_texts) < min(len(eval_texts), len(train_texts)) / 2

    def test_broad_tool_coverage(self, suite):
        used = {query.gold_tools[0] for query in suite.queries}
        assert len(used) >= 40  # 120 queries cycle through 51 templates

    def test_qids_unique(self, suite):
        qids = [query.qid for query in suite.queries]
        assert len(qids) == len(set(qids))


class TestGeoEngineSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return build_geoengine_suite(n_queries=64)

    def test_sequential_chains(self, suite):
        assert suite.sequential
        assert all(query.n_steps >= 3 for query in suite.queries)

    def test_gold_arguments_validate(self, suite):
        for query in suite.queries:
            for call in query.gold_calls:
                spec = suite.registry.get(call.tool)
                assert spec.validate_arguments(call.arguments) == [], (query.qid, call.tool)

    def test_chains_start_with_data_access(self, suite):
        for query in suite.queries:
            first_tool = suite.registry.get(query.gold_tools[0])
            assert first_tool.category == "data_access"

    def test_season_consistency(self, suite):
        # a query mentioning fall must filter on the fall season
        for query in suite.queries:
            for call in query.gold_calls:
                if call.tool == "filter_images_by_season":
                    assert call.arguments["season"] in query.text.lower()

    def test_deterministic_generation(self):
        a = generate_geoengine_queries(30, seed=1, split="eval")
        b = generate_geoengine_queries(30, seed=1, split="eval")
        assert [q.text for q in a] == [q.text for q in b]

    def test_category_labels(self, suite):
        assert set(suite.categories) <= {"vqa_mapping", "detection", "analytics", "reporting"}


class TestSuiteValidation:
    def test_unknown_gold_tool_rejected(self):
        good = build_bfcl_suite(n_queries=2)
        bad_query = Query("x", "text", "cat", (ToolCall("not_a_tool"),))
        with pytest.raises(ValueError):
            BenchmarkSuite("broken", good.registry, [bad_query])

    def test_queries_by_category_split(self):
        suite = build_bfcl_suite(n_queries=60)
        for category in suite.categories:
            for query in suite.queries_by_category(category):
                assert query.category == category

"""Catalog hot-swap through the serving gateway.

The contract under test: ``Gateway.update_catalog`` re-tools one tenant
atomically, the plan cache can never serve a plan computed against a
previous catalog (the catalog version rides in the cache key), swapped
traffic is bitwise identical to a sequential run over the new catalog,
and a catalog that breaks the tenant's query pool is rejected without
touching the running state.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.embedding.cache import CachedEmbedder
from repro.evaluation.runner import ExperimentRunner
from repro.serving import Gateway, ServingConfig, SessionManager
from repro.serving.gateway import _PlanCache
from repro.serving.process import ProcessEpisodeExecutor
from repro.specs import CatalogSpec
from repro.suites import load_suite
from repro.tools.catalog import load_catalog

MODEL, QUANT = "hermes2-pro-8b", "q4_K_M"
N_QUERIES = 8


@pytest.fixture()
def suite():
    return load_suite("edgehome", n_queries=N_QUERIES)


def make_gateway(suite, plan_cache_size=64):
    sessions = SessionManager(embedder=CachedEmbedder())
    sessions.register("home", suite)
    config = ServingConfig(max_batch_size=4, max_wait_ms=2.0,
                           default_scheme="lis-k3", default_model=MODEL,
                           default_quant=QUANT,
                           plan_cache_size=plan_cache_size)
    return Gateway(sessions, config=config)


def reference_episodes(catalog, n_queries=N_QUERIES):
    """Sequential ExperimentRunner episodes over a re-tooled suite."""
    suite = load_suite("edgehome", n_queries=n_queries, catalog=catalog)
    runner = ExperimentRunner(suite, embedder=CachedEmbedder())
    return {e.qid: e for e in runner.run("lis-k3", MODEL, QUANT).episodes}


class TestPlanCacheKey:
    def test_key_includes_catalog_version(self, suite):
        query = suite.queries[0]
        a = _PlanCache.key("home", query, "lis-k3", MODEL, QUANT, "v1")
        b = _PlanCache.key("home", query, "lis-k3", MODEL, QUANT, "v2")
        assert a != b
        assert "v1" in a


def test_swap_mid_traffic_never_serves_stale_plan(suite):
    """Queries served, swapped, re-served: the post-swap episodes must be
    fresh plans against the new catalog, not plan-cache replays."""
    compressed = load_catalog("edgehome", variant="compressed")

    async def scenario():
        gateway = make_gateway(suite)
        async with gateway:
            queries = suite.queries[:4]
            before = [await gateway.submit("home", q) for q in queries]
            # repeat: all four served from the plan cache
            repeat = [await gateway.submit("home", q) for q in queries]
            hits_before = gateway.metrics()["plan_cache_hits"]

            version = gateway.update_catalog("home", compressed)

            after = [await gateway.submit("home", q) for q in queries]
            metrics = gateway.metrics()
        return before, repeat, after, hits_before, version, metrics

    before, repeat, after, hits_before, version, metrics = asyncio.run(scenario())

    # pre-swap behavior: the repeat pass was answered from the cache,
    # bitwise identical
    assert hits_before == 4
    for a, b in zip(before, repeat):
        assert a.episode == b.episode

    # the swap bumped the version to the compressed catalog's content hash
    assert version == compressed.version
    assert metrics["catalog_swaps"] == 1
    assert metrics["catalog_swaps_by_tenant"] == {"home": 1}

    # post-swap: every request re-planned (cache keys carry the new
    # version, so the four cached plans are unreachable) ...
    assert metrics["plan_cache_hits"] == hits_before
    assert metrics["plan_cache_misses"] == 8

    # ... and episodes equal a sequential run over the compressed suite,
    # bitwise — not the full-variant episodes served before the swap
    reference = reference_episodes(compressed)
    for response in after:
        assert response.episode == reference[response.episode.qid]
    changed = [a.episode != b.episode for a, b in zip(before, after)]
    assert any(changed), "compressed catalog should change prompt accounting"


def test_swap_back_restores_content_addressed_cache(suite):
    """Swapping back to a catalog with identical content re-enables the
    plans cached under it — the version is a content hash, not a counter."""
    full = suite.catalog
    compressed = load_catalog("edgehome", variant="compressed")

    async def scenario():
        gateway = make_gateway(suite)
        async with gateway:
            query = suite.queries[0]
            first = await gateway.submit("home", query)
            gateway.update_catalog("home", compressed)
            await gateway.submit("home", query)
            gateway.update_catalog("home", full)
            third = await gateway.submit("home", query)
            metrics = gateway.metrics()
        return first, third, metrics

    first, third, metrics = asyncio.run(scenario())
    assert first.episode == third.episode
    assert metrics["plan_cache_hits"] == 1  # the third submit
    assert metrics["catalog_swaps"] == 2


def test_swap_without_plan_cache_still_retools(suite):
    minimal = load_catalog("edgehome", variant="minimal")

    async def scenario():
        gateway = make_gateway(suite, plan_cache_size=0)
        async with gateway:
            query = suite.queries[0]
            before = await gateway.submit("home", query)
            gateway.update_catalog("home", minimal)
            after = await gateway.submit("home", query)
        return before, after

    before, after = asyncio.run(scenario())
    reference = reference_episodes(minimal)
    assert after.episode == reference[after.episode.qid]
    # the re-tooled catalog changes the episode (shorter descriptions
    # shift retrieval and prompt accounting); per-episode token counts
    # are behavior-dependent — the catalog-level reduction is asserted
    # in the bench and in tests/test_tools_catalog.py
    assert before.episode != after.episode


def test_swap_accepts_name_and_catalog_spec(suite):
    async def scenario():
        gateway = make_gateway(suite)
        async with gateway:
            by_name = gateway.update_catalog("home", "edgehome")
            by_spec = gateway.update_catalog(
                "home", CatalogSpec("edgehome", variant="compressed"))
        return by_name, by_spec

    by_name, by_spec = asyncio.run(scenario())
    assert by_name == load_catalog("edgehome").version
    assert by_spec == load_catalog("edgehome", variant="compressed").version


def test_swap_rejecting_broken_catalog_leaves_tenant_running(suite):
    """A catalog that drops a gold tool fails validation; the tenant keeps
    serving the old catalog and the version does not move."""
    broken = suite.catalog.subset(suite.catalog.names[:5])

    async def scenario():
        gateway = make_gateway(suite)
        async with gateway:
            session = gateway.sessions.get("home")
            version_before = session.catalog_version
            with pytest.raises(ValueError, match="references unknown tool"):
                gateway.update_catalog("home", broken)
            response = await gateway.submit("home", suite.queries[0])
            metrics = gateway.metrics()
            return version_before, session.catalog_version, response, metrics

    before, after, response, metrics = asyncio.run(scenario())
    assert before == after
    assert response.episode.qid == suite.queries[0].qid
    assert metrics["catalog_swaps"] == 0


def test_swap_unknown_tenant_raises(suite):
    async def scenario():
        gateway = make_gateway(suite)
        async with gateway:
            with pytest.raises(KeyError, match="unknown tenant"):
                gateway.update_catalog("nope", "edgehome")

    asyncio.run(scenario())


def test_leased_agent_pairs_agent_with_version(suite):
    sessions = SessionManager(embedder=CachedEmbedder())
    session = sessions.register("home", suite)
    agent, version = session.leased_agent("lis-k3", MODEL, QUANT)
    assert version == suite.catalog.version
    # the swap replaces suite, runner and agent cache in one move
    compressed = load_catalog("edgehome", variant="compressed")
    new_version = session.swap_catalog(compressed)
    swapped_agent, swapped_version = session.leased_agent("lis-k3", MODEL, QUANT)
    assert swapped_version == new_version == compressed.version
    assert swapped_agent is not agent
    assert swapped_agent.suite.catalog.variant == "compressed"


def test_process_stage_uncover_routes_inline():
    stage = ProcessEpisodeExecutor(workers=1)
    stage._tenants = frozenset({"home", "other"})
    assert stage.covers("home")
    stage.uncover("home")
    assert not stage.covers("home")
    assert stage.covers("other")

"""Old API vs Session API: bitwise-identical episodes, working shims.

The legacy ``build_*`` helpers are deprecation shims over the exact
machinery :func:`repro.open_session` drives, so for every scheme a full
edgehome grid cell run through the old path must equal — field for
field, float for float — the same cell run through a fresh Session.
"""

import warnings

import pytest

from repro import (
    AgentSpec,
    build_agent,
    build_gateway,
    build_less_is_more,
    load_suite,
    open_session,
)

MODEL, QUANT = "hermes2-pro-8b", "q4_K_M"
N_QUERIES = 8


@pytest.fixture(scope="module")
def suite():
    return load_suite("edgehome", n_queries=N_QUERIES)


def legacy_episodes(scheme, suite):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        if scheme.startswith("lis"):
            k = int(scheme.split("-k", 1)[1]) if "-k" in scheme else 3
            agent = build_less_is_more(MODEL, QUANT, suite, k=k)
        else:
            agent = build_agent(scheme, MODEL, QUANT, suite)
    return [agent.run(query) for query in suite.queries]


@pytest.mark.parametrize("scheme", ["default", "gorilla", "lis-k3", "lis-k5"])
def test_legacy_and_session_paths_bitwise_identical(scheme, suite):
    old = legacy_episodes(scheme, suite)
    new = open_session(suite=suite).run(
        AgentSpec(scheme=scheme, model=MODEL, quant=QUANT)).episodes
    assert len(old) == len(new) == N_QUERIES
    for old_episode, new_episode in zip(old, new):
        # dataclass equality compares every field, floats included —
        # bitwise identity, not approximation
        assert old_episode == new_episode


class TestDeprecationShims:
    def test_build_agent_warns_and_delegates(self, suite):
        with pytest.deprecated_call(match="build_agent is deprecated"):
            agent = build_agent("default", MODEL, QUANT, suite)
        assert agent.scheme == "default"
        assert agent.suite is suite

    def test_build_less_is_more_warns_and_delegates(self, suite):
        with pytest.deprecated_call(match="build_less_is_more is deprecated"):
            agent = build_less_is_more(MODEL, QUANT, suite, k=5)
        assert agent.scheme == "lis"
        assert agent.k == 5

    def test_build_gateway_warns_and_delegates(self, suite):
        with pytest.deprecated_call(match="build_gateway is deprecated"):
            gateway = build_gateway({"home": suite})
        assert gateway.sessions.get("home").suite is suite

    def test_build_agent_kwargs_pass_through(self, suite):
        with pytest.deprecated_call():
            agent = build_agent("gorilla", MODEL, QUANT, suite, k=6)
        assert agent.k == 6

    def test_build_agent_unknown_scheme_lists_registered(self, suite):
        with pytest.deprecated_call(), \
                pytest.raises(ValueError, match="registered schemes"):
            build_agent("react", MODEL, QUANT, suite)

    def test_load_suite_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            load_suite("edgehome", n_queries=2)

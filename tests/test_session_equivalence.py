"""Old API vs Session API: bitwise-identical episodes, working shims.

The legacy ``build_*`` helpers are deprecation shims over the exact
machinery :func:`repro.open_session` drives, so for every scheme a full
edgehome grid cell run through the old path must equal — field for
field, float for float — the same cell run through a fresh Session.
"""

import warnings

import pytest

from repro import (
    AgentSpec,
    EngineSpec,
    build_agent,
    build_gateway,
    build_less_is_more,
    load_suite,
    open_session,
)

MODEL, QUANT = "hermes2-pro-8b", "q4_K_M"
N_QUERIES = 8


@pytest.fixture(scope="module")
def suite():
    return load_suite("edgehome", n_queries=N_QUERIES)


def legacy_episodes(scheme, suite):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        if scheme.startswith("lis"):
            k = int(scheme.split("-k", 1)[1]) if "-k" in scheme else 3
            agent = build_less_is_more(MODEL, QUANT, suite, k=k)
        else:
            agent = build_agent(scheme, MODEL, QUANT, suite)
    return [agent.run(query) for query in suite.queries]


@pytest.mark.parametrize("scheme", ["default", "gorilla", "lis-k3", "lis-k5"])
def test_legacy_and_session_paths_bitwise_identical(scheme, suite):
    old = legacy_episodes(scheme, suite)
    new = open_session(suite=suite).run(
        AgentSpec(scheme=scheme, model=MODEL, quant=QUANT)).episodes
    assert len(old) == len(new) == N_QUERIES
    for old_episode, new_episode in zip(old, new):
        # dataclass equality compares every field, floats included —
        # bitwise identity, not approximation
        assert old_episode == new_episode


@pytest.mark.parametrize("suite_name", ["bfcl", "geoengine", "edgehome"])
def test_catalog_full_variant_equals_pre_redesign_tool_path(suite_name):
    """Default-variant episodes == the pre-catalog tool path, per suite.

    Before the catalog redesign every suite hand-built a
    ``ToolRegistry`` in a module-private helper; those helpers survive
    as ``build_*_registry``.  A suite assembled the old way (registry +
    raw query generators) must produce bitwise-identical episodes to the
    same suite loaded through the catalog registry — the ``full``
    variant is a pure re-plumbing, not a behavior change.
    """
    from repro.suites.base import BenchmarkSuite
    from repro.suites.bfcl import generate_bfcl_queries
    from repro.suites.bfcl_catalog import build_bfcl_registry
    from repro.suites.edgehome import (
        build_edgehome_registry,
        generate_edgehome_queries,
    )
    from repro.suites.geoengine import generate_geoengine_queries
    from repro.suites.geoengine_catalog import build_geoengine_registry

    legacy = {
        # (registry builder, query generator, builder's n_train, sequential)
        "bfcl": (build_bfcl_registry, generate_bfcl_queries, 120, False),
        "geoengine": (build_geoengine_registry, generate_geoengine_queries,
                      120, True),
        "edgehome": (build_edgehome_registry, generate_edgehome_queries,
                     100, True),
    }
    build_registry, generate, n_train, sequential = legacy[suite_name]
    n_queries = 6
    old_suite = BenchmarkSuite(
        name=suite_name,
        registry=build_registry(),
        queries=generate(n_queries, 0, "eval"),
        train_queries=generate(n_train, 0, "train"),
        sequential=sequential,
    )
    old = open_session(suite=old_suite).run(
        AgentSpec(scheme="lis-k3", model=MODEL, quant=QUANT)).episodes
    new = open_session(suite_name, n_queries=n_queries).run(
        AgentSpec(scheme="lis-k3", model=MODEL, quant=QUANT)).episodes
    assert len(old) == len(new) == n_queries
    for old_episode, new_episode in zip(old, new):
        assert old_episode == new_episode


class TestSimulatedEngineEquivalence:
    """The engine boundary is a pure seam: ``engine=simulated`` episodes
    must equal the engine-less direct path bitwise, on every scheme,
    both sequential and served — the acceptance criterion for routing
    the agents' LLM construction through ``repro.engines``."""

    @pytest.mark.parametrize("scheme",
                             ["default", "gorilla", "lis-k3", "lis-k5"])
    def test_sequential_bitwise_identical(self, scheme, suite):
        direct = open_session(suite=suite).run(
            AgentSpec(scheme=scheme, model=MODEL, quant=QUANT)).episodes
        engined = open_session(suite=suite).run(
            AgentSpec(scheme=scheme, model=MODEL, quant=QUANT,
                      engine=EngineSpec("simulated"))).episodes
        assert len(direct) == len(engined) == N_QUERIES
        for direct_episode, engined_episode in zip(direct, engined):
            assert direct_episode == engined_episode

    def test_served_bitwise_identical(self, suite):
        import asyncio

        from repro.serving import Gateway, ServingConfig, SessionManager

        reference = {
            episode.qid: episode
            for episode in open_session(suite=suite).run(
                AgentSpec(scheme="lis-k3", model=MODEL, quant=QUANT)).episodes
        }

        async def serve_all():
            sessions = SessionManager()
            sessions.register("t", suite, engine=EngineSpec("simulated"))
            config = ServingConfig(max_batch_size=4, max_wait_ms=2.0,
                                   default_scheme="lis-k3",
                                   default_model=MODEL, default_quant=QUANT)
            async with Gateway(sessions, config=config) as gateway:
                return await asyncio.gather(*(
                    gateway.submit("t", query) for query in suite.queries))

        for response in asyncio.run(serve_all()):
            assert response.episode == reference[response.episode.qid]


class TestDeprecationShims:
    def test_build_agent_warns_and_delegates(self, suite):
        with pytest.deprecated_call(match="build_agent is deprecated"):
            agent = build_agent("default", MODEL, QUANT, suite)
        assert agent.scheme == "default"
        assert agent.suite is suite

    def test_build_less_is_more_warns_and_delegates(self, suite):
        with pytest.deprecated_call(match="build_less_is_more is deprecated"):
            agent = build_less_is_more(MODEL, QUANT, suite, k=5)
        assert agent.scheme == "lis"
        assert agent.k == 5

    def test_build_gateway_warns_and_delegates(self, suite):
        with pytest.deprecated_call(match="build_gateway is deprecated"):
            gateway = build_gateway({"home": suite})
        assert gateway.sessions.get("home").suite is suite

    def test_build_agent_kwargs_pass_through(self, suite):
        with pytest.deprecated_call():
            agent = build_agent("gorilla", MODEL, QUANT, suite, k=6)
        assert agent.k == 6

    def test_build_agent_unknown_scheme_lists_registered(self, suite):
        with pytest.deprecated_call(), \
                pytest.raises(ValueError, match="registered schemes"):
            build_agent("react", MODEL, QUANT, suite)

    def test_load_suite_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            load_suite("edgehome", n_queries=2)

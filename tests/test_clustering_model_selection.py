"""Tests for silhouette-based cluster-count selection."""

import numpy as np
import pytest

from repro.clustering.model_selection import select_n_clusters
from repro.utils.rng import derive_rng


def blobs(n_blobs, points_each=10, spread=0.2):
    rng = derive_rng("model-selection-blobs", n_blobs)
    centers = 8.0 * rng.standard_normal((n_blobs, 3))
    return np.vstack([
        center + spread * rng.standard_normal((points_each, 3))
        for center in centers
    ])


class TestSelectNClusters:
    @pytest.mark.parametrize("true_k", [3, 5])
    def test_recovers_true_count(self, true_k):
        best_k, scores = select_n_clusters(blobs(true_k), k_min=2, k_max=10)
        assert best_k == true_k
        assert scores[true_k] == max(scores.values())

    def test_scores_for_all_candidates(self):
        _, scores = select_n_clusters(blobs(4), k_min=2, k_max=8)
        assert set(scores) == set(range(2, 9))

    def test_tiny_dataset(self):
        best_k, _ = select_n_clusters(np.ones((2, 3)))
        assert best_k == 2

    def test_k_max_clamped_to_n(self):
        data = blobs(2, points_each=3)  # 6 points
        best_k, scores = select_n_clusters(data, k_min=2, k_max=50)
        assert max(scores) <= 5

    def test_deterministic(self):
        data = blobs(3)
        a, _ = select_n_clusters(data)
        b, _ = select_n_clusters(data)
        assert a == b


class TestAutoKInLevelBuilder:
    def test_auto_builds_levels(self):
        from repro.core.levels import SearchLevelBuilder
        from repro.suites.geoengine import build_geoengine_suite

        suite = build_geoengine_suite(n_queries=10, n_train=50)
        levels = SearchLevelBuilder(n_clusters="auto").build(suite)
        assert levels.n_clusters >= 4
        # clusters must still be genuine reductions of the pool
        for cluster in levels.clusters:
            assert len(cluster.tools) < suite.n_tools

    def test_invalid_string_rejected(self):
        from repro.core.levels import SearchLevelBuilder

        with pytest.raises(ValueError):
            SearchLevelBuilder(n_clusters="automatic")

"""Direct unit tests for the closed-loop load generator.

``loadgen`` was previously only exercised indirectly through the bench
harness; these tests pin down workload construction, the closed-loop
driver against a real (tiny) gateway, report arithmetic and argument
validation.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serving import (
    Gateway,
    LoadReport,
    LoadSpec,
    ServingConfig,
    SessionManager,
    make_workload,
    run_closed_loop,
    run_load,
)
from repro.suites import load_suite


@pytest.fixture(scope="module")
def suite():
    return load_suite("edgehome", n_queries=5)


# ----------------------------------------------------------------------
# make_workload
# ----------------------------------------------------------------------
def test_make_workload_requires_a_tenant():
    with pytest.raises(ValueError, match="at least one tenant"):
        make_workload({}, 4)


def test_make_workload_interleaves_tenants(suite):
    other = load_suite("edgehome", n_queries=3)
    workload = make_workload({"a": suite, "b": other}, 6)
    assert len(workload) == 6
    assert [spec.tenant for spec in workload] == ["a", "b"] * 3
    assert workload[0].query == suite.queries[0]
    assert workload[1].query == other.queries[0]
    assert workload[2].query == suite.queries[1]


def test_make_workload_wraps_around_short_suites(suite):
    workload = make_workload({"a": suite}, len(suite.queries) + 2)
    assert workload[len(suite.queries)].query == suite.queries[0]
    assert workload[-1].query == suite.queries[1]


# ----------------------------------------------------------------------
# LoadReport arithmetic
# ----------------------------------------------------------------------
def test_report_throughput_and_percentiles():
    report = LoadReport(n_requests=10, concurrency=2, wall_s=2.0,
                        latencies_s=[0.010, 0.020, 0.030])
    assert report.throughput_rps == pytest.approx(5.0)
    assert report.latency_p50_ms == pytest.approx(20.0)
    assert report.latency_p99_ms == pytest.approx(29.8)


def test_report_zero_wall_clock_yields_zero_throughput():
    report = LoadReport(n_requests=10, concurrency=1, wall_s=0.0)
    assert report.throughput_rps == 0.0
    assert report.latency_p95_ms == 0.0  # empty latency sample


# ----------------------------------------------------------------------
# run_closed_loop / run_load
# ----------------------------------------------------------------------
def test_run_closed_loop_validates_concurrency(suite):
    async def go():
        sessions = SessionManager()
        sessions.register("t", suite)
        async with Gateway(sessions) as gateway:
            await run_closed_loop(gateway, make_workload({"t": suite}, 2), 0)

    with pytest.raises(ValueError, match="concurrency"):
        asyncio.run(go())


def test_run_closed_loop_serves_whole_workload(suite):
    workload = make_workload({"t": suite}, 8)

    async def go():
        sessions = SessionManager()
        sessions.register("t", suite)
        config = ServingConfig(max_batch_size=4, max_wait_ms=2.0)
        async with Gateway(sessions, config=config) as gateway:
            return await run_closed_loop(gateway, workload, concurrency=4)

    report = asyncio.run(go())
    assert report.n_requests == 8
    assert report.concurrency == 4
    assert len(report.latencies_s) == 8
    assert all(latency >= 0.0 for latency in report.latencies_s)
    assert report.wall_s > 0.0
    # the workload revisits qids, so episodes dedupe to the suite's pool
    assert set(report.episodes) <= {query.qid for query in suite.queries}
    assert report.gateway_metrics["requests_completed"] == 8


def test_run_load_owns_gateway_lifecycle(suite):
    report = run_load({"t": suite}, ServingConfig(max_batch_size=2),
                      n_requests=4, concurrency=2)
    assert report.n_requests == 4
    assert report.throughput_rps > 0.0
    assert report.gateway_metrics["requests_admitted"] == 4


def test_run_load_episodes_match_direct_submission(suite):
    """Loadgen must not alter served results (same bitwise contract)."""

    async def direct():
        sessions = SessionManager()
        sessions.register("t", suite)
        async with Gateway(sessions) as gateway:
            responses = await asyncio.gather(*(
                gateway.submit("t", query) for query in suite.queries))
        return {r.episode.qid: r.episode for r in responses}

    want = asyncio.run(direct())
    report = run_load({"t": suite}, ServingConfig(max_batch_size=4),
                      n_requests=len(suite.queries), concurrency=3)
    for qid, episode in report.episodes.items():
        assert episode == want[qid]

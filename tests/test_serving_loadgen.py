"""Direct unit tests for the closed-loop load generator.

``loadgen`` was previously only exercised indirectly through the bench
harness; these tests pin down workload construction, the closed-loop
driver against a real (tiny) gateway, report arithmetic and argument
validation.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serving import (
    Gateway,
    LoadReport,
    LoadSpec,
    ServingConfig,
    SessionManager,
    make_workload,
    run_closed_loop,
    run_load,
)
from repro.suites import load_suite


@pytest.fixture(scope="module")
def suite():
    return load_suite("edgehome", n_queries=5)


# ----------------------------------------------------------------------
# make_workload
# ----------------------------------------------------------------------
def test_make_workload_requires_a_tenant():
    with pytest.raises(ValueError, match="at least one tenant"):
        make_workload({}, 4)


def test_make_workload_interleaves_tenants(suite):
    other = load_suite("edgehome", n_queries=3)
    workload = make_workload({"a": suite, "b": other}, 6)
    assert len(workload) == 6
    assert [spec.tenant for spec in workload] == ["a", "b"] * 3
    assert workload[0].query == suite.queries[0]
    assert workload[1].query == other.queries[0]
    assert workload[2].query == suite.queries[1]


def test_make_workload_wraps_around_short_suites(suite):
    workload = make_workload({"a": suite}, len(suite.queries) + 2)
    assert workload[len(suite.queries)].query == suite.queries[0]
    assert workload[-1].query == suite.queries[1]


def test_make_workload_rejects_empty_tenant_suite(suite):
    """Regression: an empty query list used to surface as a bare
    ZeroDivisionError from the cycling arithmetic; the error must name
    the offending tenant instead."""
    empty = load_suite("edgehome", n_queries=5)
    empty.queries = []
    with pytest.raises(ValueError, match="tenant 'b' has an empty query list"):
        make_workload({"a": suite, "b": empty}, 4)


# ----------------------------------------------------------------------
# LoadReport arithmetic
# ----------------------------------------------------------------------
def test_report_throughput_and_percentiles():
    report = LoadReport(n_requests=10, concurrency=2, wall_s=2.0,
                        latencies_s=[0.010, 0.020, 0.030])
    assert report.throughput_rps == pytest.approx(5.0)
    assert report.latency_p50_ms == pytest.approx(20.0)
    assert report.latency_p99_ms == pytest.approx(29.8)


def test_report_zero_wall_clock_yields_zero_throughput():
    report = LoadReport(n_requests=10, concurrency=1, wall_s=0.0)
    assert report.throughput_rps == 0.0
    assert report.goodput_rps == 0.0
    assert report.latency_p95_ms == 0.0  # empty latency sample


def test_report_goodput_excludes_failed_requests():
    """Regression: throughput_rps counts failures (it is *offered* load);
    goodput_rps is the served-capacity number chaos runs must report."""
    report = LoadReport(n_requests=10, concurrency=2, wall_s=2.0, n_errors=4)
    assert report.throughput_rps == pytest.approx(5.0)
    assert report.goodput_rps == pytest.approx(3.0)
    assert report.success_rate == pytest.approx(0.6)


def test_report_goodput_equals_throughput_without_errors():
    report = LoadReport(n_requests=6, concurrency=1, wall_s=3.0)
    assert report.goodput_rps == report.throughput_rps


# ----------------------------------------------------------------------
# run_closed_loop / run_load
# ----------------------------------------------------------------------
def test_run_closed_loop_validates_concurrency(suite):
    async def go():
        sessions = SessionManager()
        sessions.register("t", suite)
        async with Gateway(sessions) as gateway:
            await run_closed_loop(gateway, make_workload({"t": suite}, 2), 0)

    with pytest.raises(ValueError, match="concurrency"):
        asyncio.run(go())


def test_run_closed_loop_serves_whole_workload(suite):
    workload = make_workload({"t": suite}, 8)

    async def go():
        sessions = SessionManager()
        sessions.register("t", suite)
        config = ServingConfig(max_batch_size=4, max_wait_ms=2.0)
        async with Gateway(sessions, config=config) as gateway:
            return await run_closed_loop(gateway, workload, concurrency=4)

    report = asyncio.run(go())
    assert report.n_requests == 8
    assert report.concurrency == 4
    assert len(report.latencies_s) == 8
    assert all(latency >= 0.0 for latency in report.latencies_s)
    assert report.wall_s > 0.0
    # every completion is kept, keyed (tenant, qid, repeat) — a workload
    # that cycles its query pool must not overwrite earlier repeats
    assert len(report.episodes) == 8
    qids = {query.qid for query in suite.queries}
    for tenant, qid, repeat in report.episodes:
        assert tenant == "t"
        assert qid in qids
        assert repeat >= 0
    # the 8-request workload over 5 queries revisits 3 of them once
    repeated = [key for key in report.episodes if key[2] == 1]
    assert len(repeated) == 3
    for tenant, qid, _ in repeated:
        first = report.episodes[(tenant, qid, 0)]
        again = report.episodes[(tenant, qid, 1)]
        assert first == again  # deterministic serving: repeats are bitwise equal
    assert report.gateway_metrics["requests_completed"] == 8


def test_run_load_owns_gateway_lifecycle(suite):
    report = run_load({"t": suite}, ServingConfig(max_batch_size=2),
                      n_requests=4, concurrency=2)
    assert report.n_requests == 4
    assert report.throughput_rps > 0.0
    assert report.gateway_metrics["requests_admitted"] == 4


def test_run_load_episodes_match_direct_submission(suite):
    """Loadgen must not alter served results (same bitwise contract)."""

    async def direct():
        sessions = SessionManager()
        sessions.register("t", suite)
        async with Gateway(sessions) as gateway:
            responses = await asyncio.gather(*(
                gateway.submit("t", query) for query in suite.queries))
        return {r.episode.qid: r.episode for r in responses}

    want = asyncio.run(direct())
    report = run_load({"t": suite}, ServingConfig(max_batch_size=4),
                      n_requests=len(suite.queries), concurrency=3)
    assert len(report.episodes) == len(suite.queries)
    for (_, qid, repeat), episode in report.episodes.items():
        assert repeat == 0  # one pass over the pool: no repeats
        assert episode == want[qid]

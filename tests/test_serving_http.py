"""Integration tests for the HTTP front door (``repro.serving.http``).

Every endpoint is exercised through the in-process
:class:`~repro.serving.http.ASGITestClient` — the app coroutine runs
directly on the test's event loop, no sockets — plus each row of the
:data:`~repro.serving.http.app.ERROR_STATUS` table: 429 (queue full),
503 (shed tenant), 504 (deadline), 404 (unknown tenant / qid / route)
and 400 (validation).  ``/metrics`` output goes through the same strict
exposition parser the observability tests use.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.episode import EpisodeResult
from repro.embedding.cache import CachedEmbedder
from repro.obs.trace import request_trace_id
from repro.serving import Gateway, ServingConfig, SessionManager
from repro.serving.http import ASGITestClient, create_app
from repro.serving.http.app import ERROR_STATUS, METRICS_CONTENT_TYPE
from repro.serving.http.client import lifespan_shutdown, lifespan_startup
from repro.specs import BudgetSpec
from repro.suites import load_suite
from repro.tools.catalog import load_catalog
from test_obs_prometheus import _parse_exposition

MODEL, QUANT = "hermes2-pro-8b", "q4_K_M"


@pytest.fixture(scope="module")
def suite():
    return load_suite("edgehome", n_queries=6)


def make_app(suite, **overrides):
    sessions = SessionManager(embedder=CachedEmbedder())
    sessions.register("home", suite)
    kwargs = dict(max_batch_size=4, max_wait_ms=2.0,
                  default_scheme="lis-k3", default_model=MODEL,
                  default_quant=QUANT)
    kwargs.update(overrides)
    return create_app(Gateway(sessions, config=ServingConfig(**kwargs)))


def serve(suite, scenario, **overrides):
    """Boot app + client, run ``scenario(client, app)``, tear down."""

    async def go():
        app = make_app(suite, **overrides)
        async with app:
            return await scenario(ASGITestClient(app), app)

    return asyncio.run(go())


# ----------------------------------------------------------------------
# POST /v1/call
# ----------------------------------------------------------------------
def test_call_by_qid(suite):
    qid = suite.queries[0].qid

    async def scenario(client, app):
        return await client.post("/v1/call",
                                 {"tenant": "home", "qid": qid})

    response = serve(suite, scenario)
    assert response.status == 200
    payload = response.json()
    assert payload["tenant"] == "home"
    assert payload["batch_size"] >= 1
    assert payload["latency_s"] > 0.0
    # the deterministic trace id rides in body and header alike
    assert payload["trace_id"] == request_trace_id("home", qid, 0)
    assert response.trace_id == payload["trace_id"]
    episode = EpisodeResult.from_dict(payload["episode"])
    assert episode.qid == qid
    assert isinstance(episode.success, bool)
    assert episode.steps


def test_call_by_exact_query_text(suite):
    query = suite.queries[1]

    async def scenario(client, app):
        return await client.post("/v1/call",
                                 {"tenant": "home", "query": query.text})

    response = serve(suite, scenario)
    assert response.status == 200
    assert response.json()["episode"]["qid"] == query.qid


def test_call_repeats_get_distinct_trace_ids(suite):
    qid = suite.queries[0].qid

    async def scenario(client, app):
        first = await client.post("/v1/call", {"tenant": "home", "qid": qid})
        second = await client.post("/v1/call", {"tenant": "home", "qid": qid})
        return first, second

    first, second = serve(suite, scenario)
    assert first.trace_id == request_trace_id("home", qid, 0)
    assert second.trace_id == request_trace_id("home", qid, 1)
    assert first.trace_id != second.trace_id


def test_call_honors_scheme_override(suite):
    qid = suite.queries[0].qid

    async def scenario(client, app):
        return await client.post(
            "/v1/call", {"tenant": "home", "qid": qid, "scheme": "lis-k1"})

    response = serve(suite, scenario)
    assert response.status == 200
    episode = EpisodeResult.from_dict(response.json()["episode"])
    # k=1 retrieval presents exactly one tool per step (default is k=3)
    assert all(step.n_tools_presented == 1 for step in episode.steps)


# ----------------------------------------------------------------------
# the error table, row by row
# ----------------------------------------------------------------------
def test_error_table_orders_subclasses_before_bases():
    """The first matching row wins, so a subclass listed after its base
    would be unreachable — pin the order."""
    types = [exc_type for exc_type, _ in ERROR_STATUS]
    for index, exc_type in enumerate(types):
        for later in types[index + 1:]:
            assert not issubclass(later, exc_type) or later is exc_type, \
                f"{later.__name__} is shadowed by {exc_type.__name__}"


def test_queue_full_maps_to_429(suite):
    qid = suite.queries[0].qid

    async def scenario(client, app):
        # capacity 1: the first submit occupies the queue (the batch
        # waits on max_wait_ms), the second bounces deterministically
        return await asyncio.gather(
            client.post("/v1/call", {"tenant": "home", "qid": qid}),
            client.post("/v1/call", {"tenant": "home",
                                     "qid": suite.queries[1].qid}))

    first, second = serve(suite, scenario, queue_capacity=1,
                          max_batch_size=8, max_wait_ms=50.0)
    assert first.status == 200
    assert second.status == 429
    error = second.json()["error"]
    assert error["type"] == "QueueFullError"
    assert error["status"] == 429
    assert error["capacity"] == 1
    assert error["depth"] >= 1
    assert error["per_tenant"] == {"home": 1}
    # admission rejections still carry the request's trace id
    assert second.trace_id == request_trace_id(
        "home", suite.queries[1].qid, 0)


def test_shed_tenant_maps_to_503(suite):
    qid = suite.queries[0].qid

    async def scenario(client, app):
        app.gateway.shed_tenant("home")
        shed = await client.post("/v1/call", {"tenant": "home", "qid": qid})
        app.gateway.unshed_tenant("home")
        recovered = await client.post("/v1/call",
                                      {"tenant": "home", "qid": qid})
        return shed, recovered

    shed, recovered = serve(suite, scenario)
    assert shed.status == 503
    assert shed.json()["error"]["type"] == "TenantShedError"
    assert recovered.status == 200


def test_deadline_maps_to_504(suite):
    qid = suite.queries[0].qid

    async def scenario(client, app):
        # the batch window far exceeds the request deadline, so the
        # request is still queued when its deadline expires
        return await client.post(
            "/v1/call", {"tenant": "home", "qid": qid, "timeout_ms": 5})

    response = serve(suite, scenario, max_batch_size=64, max_wait_ms=5000.0)
    assert response.status == 504
    error = response.json()["error"]
    assert error["type"] == "DeadlineExceededError"
    assert "deadline" in error["message"]
    assert response.trace_id == request_trace_id("home", qid, 0)


def test_unknown_tenant_maps_to_404(suite):
    async def scenario(client, app):
        return await client.post(
            "/v1/call", {"tenant": "ghost", "qid": suite.queries[0].qid})

    response = serve(suite, scenario)
    assert response.status == 404
    assert response.json()["error"]["type"] == "UnknownTenantError"


def test_unknown_qid_maps_to_404(suite):
    async def scenario(client, app):
        return await client.post("/v1/call",
                                 {"tenant": "home", "qid": "no-such-query"})

    response = serve(suite, scenario)
    assert response.status == 404


@pytest.mark.parametrize("body, match", [
    ({"qid": "x"}, "tenant"),                                 # missing tenant
    ({"tenant": "home"}, "exactly one"),                      # neither qid/query
    ({"tenant": "home", "qid": "a", "query": "b"}, "exactly one"),
    ({"tenant": "home", "qid": "a", "bogus": 1}, "unknown field"),
    ({"tenant": "home", "qid": 7}, "'qid' must be a str"),
    ({"tenant": "home", "qid": "a", "timeout_ms": "soon"}, "timeout_ms"),
    ({"tenant": "home", "qid": "a", "scheme": 3}, "'scheme' must be a str"),
])
def test_call_validation_maps_to_400(suite, body, match):
    async def scenario(client, app):
        return await client.post("/v1/call", body)

    response = serve(suite, scenario)
    assert response.status == 400
    error = response.json()["error"]
    assert error["status"] == 400
    assert match in error["message"]


def test_malformed_json_maps_to_400(suite):
    async def scenario(client, app):
        broken = await client.post("/v1/call", body=b"{not json")
        non_object = await client.post("/v1/call", body=b"[1, 2]")
        return broken, non_object

    broken, non_object = serve(suite, scenario)
    assert broken.status == 400
    assert non_object.status == 400
    assert "JSON object" in non_object.json()["error"]["message"]


def test_unrouted_path_maps_to_404(suite):
    async def scenario(client, app):
        return await client.get("/v2/nope")

    response = serve(suite, scenario)
    assert response.status == 404
    assert response.json()["error"]["type"] == "NotFound"


def test_wrong_method_maps_to_405_with_allow_header(suite):
    async def scenario(client, app):
        health = await client.post("/healthz", {})
        tenant = await client.request("PATCH", "/v1/tenants/home")
        return health, tenant

    health, tenant = serve(suite, scenario)
    assert health.status == 405
    assert health.headers["allow"] == "GET"
    assert tenant.status == 405
    assert set(tenant.headers["allow"].split(", ")) == \
        {"GET", "PUT", "DELETE"}


# ----------------------------------------------------------------------
# tenant administration
# ----------------------------------------------------------------------
def test_list_and_get_tenants(suite):
    async def scenario(client, app):
        listing = await client.get("/v1/tenants")
        one = await client.get("/v1/tenants/home")
        missing = await client.get("/v1/tenants/ghost")
        return listing, one, missing

    listing, one, missing = serve(suite, scenario)
    assert listing.status == 200
    tenants = listing.json()["tenants"]
    assert [t["name"] for t in tenants] == ["home"]
    assert one.status == 200
    summary = one.json()
    assert summary["suite"] == "edgehome"
    assert summary["catalog"] == "edgehome"
    assert summary["n_queries"] == len(suite.queries)
    assert summary["n_tools"] == len(suite.catalog)
    assert summary["catalog_version"] == suite.catalog.version
    assert missing.status == 404


def test_put_registers_new_tenant_and_serves_it(suite):
    bfcl_qid = load_suite("bfcl", n_queries=4).queries[0].qid

    async def scenario(client, app):
        created = await client.put(
            "/v1/tenants/team-b", {"suite": "bfcl", "n_queries": 4})
        served = await client.post("/v1/call",
                                   {"tenant": "team-b", "qid": bfcl_qid})
        listing = await client.get("/v1/tenants")
        return created, served, listing

    created, served, listing = serve(suite, scenario)
    assert created.status == 201
    assert created.json()["suite"] == "bfcl"
    assert created.json()["n_queries"] == 4
    assert served.status == 200
    assert [t["name"] for t in listing.json()["tenants"]] == \
        ["home", "team-b"]


def test_put_hot_swaps_existing_tenant_catalog(suite):
    compressed = load_catalog("edgehome", variant="compressed")

    async def scenario(client, app):
        swapped = await client.put(
            "/v1/tenants/home",
            {"catalog": {"name": "edgehome", "variant": "compressed"}})
        summary = await client.get("/v1/tenants/home")
        return swapped, summary

    swapped, summary = serve(suite, scenario)
    assert swapped.status == 200
    assert swapped.json() == {"name": "home", "swapped": True,
                              "catalog_version": compressed.version}
    assert summary.json()["catalog_variant"] == "compressed"
    assert summary.json()["catalog_version"] == compressed.version


@pytest.mark.parametrize("path, body, match", [
    ("/v1/tenants/home", {}, "hot-swap"),               # no-op PUT on existing
    ("/v1/tenants/home", {"suite": "bfcl"}, "cannot be changed"),
    ("/v1/tenants/new", {"suite": "no-such-suite"}, "no-such-suite"),
    ("/v1/tenants/new", {}, "suite"),                   # new tenant, no suite
    ("/v1/tenants/new", {"suite": "bfcl", "bogus": 1}, "unknown field"),
    ("/v1/tenants/new", {"suite": "bfcl", "catalog": 9}, "catalog"),
])
def test_put_tenant_validation_maps_to_400(suite, path, body, match):
    async def scenario(client, app):
        return await client.put(path, body)

    response = serve(suite, scenario)
    assert response.status == 400
    assert match in response.json()["error"]["message"]


def test_delete_tenant(suite):
    async def scenario(client, app):
        deleted = await client.delete("/v1/tenants/home")
        gone = await client.get("/v1/tenants/home")
        again = await client.delete("/v1/tenants/home")
        return deleted, gone, again

    deleted, gone, again = serve(suite, scenario)
    assert deleted.status == 200
    assert deleted.json() == {"name": "home", "deleted": True}
    assert gone.status == 404
    assert again.status == 404


def test_tenant_status_reports_rung_shed_and_cost(suite):
    qid = suite.queries[0].qid

    async def scenario(client, app):
        await client.post("/v1/call", {"tenant": "home", "qid": qid})
        healthy = await client.get("/v1/tenants/home/status")
        app.gateway.shed_tenant("home")
        shed = await client.get("/v1/tenants/home/status")
        missing = await client.get("/v1/tenants/ghost/status")
        return healthy, shed, missing

    healthy, shed, missing = serve(suite, scenario)
    assert healthy.status == 200
    status = healthy.json()
    assert status["rung"] == "full"
    assert status["shed"] is False
    assert status["scheme_override"] is None
    assert status["catalog_version"] == suite.catalog.version
    assert status["cost"]["requests"] == 1
    assert status["cost"]["total_tokens"] > 0
    assert shed.json()["shed"] is True
    assert missing.status == 404


def test_tenant_status_reports_budget_and_power_fields(suite):
    """The status endpoint surfaces the carbon/power subsystem: rung
    source, active power mode and the spent window against the budgets."""
    qid = suite.queries[0].qid
    budget = BudgetSpec(energy_budget_j=1e-6, window_requests=1,
                        settle_requests=1, intensity_high=450.0,
                        intensity_g_per_kwh=500.0, interval_ms=600_000.0)

    async def scenario(client, app):
        await client.post("/v1/call", {"tenant": "home", "qid": qid})
        before = await client.get("/v1/tenants/home/status")
        # one controller tick: the impossible budget steps the tenant
        # down a rung and the high static intensity steps the mode down
        app.gateway.budget.tick(now_s=0.0)
        after = await client.get("/v1/tenants/home/status")
        return before, after

    before, after = serve(suite, scenario, budget=budget)
    assert before.status == 200
    status = before.json()
    assert status["rung"] == "full"
    assert status["rung_source"] == "none"
    assert status["power_mode"] == "MAXN"
    assert status["budget"]["window_requests"] == 1
    assert status["budget"]["window_energy_j"] > 0.0
    assert status["budget"]["window_carbon_g"] > 0.0
    assert status["budget"]["energy_budget_j"] == 1e-6

    degraded = after.json()
    assert degraded["rung"] == "compressed"
    assert degraded["rung_source"] == "budget"
    assert degraded["power_mode"] == "30W"


# ----------------------------------------------------------------------
# health + metrics
# ----------------------------------------------------------------------
def test_healthz_ok_while_running(suite):
    async def scenario(client, app):
        return await client.get("/healthz")

    response = serve(suite, scenario)
    assert response.status == 200
    health = response.json()
    assert health["status"] == "ok"
    assert health["scheduler_running"] is True
    assert health["tenants"] == ["home"]
    assert health["execution_backend"] == "thread"


def test_healthz_unavailable_before_startup(suite):
    async def go():
        app = make_app(suite)  # gateway never started
        return await ASGITestClient(app).get("/healthz")

    response = asyncio.run(go())
    assert response.status == 503
    assert response.json()["status"] == "unavailable"


def test_metrics_parse_with_strict_exposition_parser(suite):
    qid = suite.queries[0].qid

    async def scenario(client, app):
        await client.post("/v1/call", {"tenant": "home", "qid": qid})
        return await client.get("/metrics")

    response = serve(suite, scenario)
    assert response.status == 200
    assert response.headers["content-type"] == METRICS_CONTENT_TYPE
    families = _parse_exposition(response.text)
    assert families["repro_requests_completed_total"] == [({}, 1.0)]
    assert families["repro_requests_admitted_total"] == [({}, 1.0)]
    assert families["repro_batch_size_count"] == [({}, 1.0)]


# ----------------------------------------------------------------------
# lifespan protocol (what an external ASGI server drives)
# ----------------------------------------------------------------------
def test_lifespan_starts_and_stops_the_gateway(suite):
    async def go():
        app = make_app(suite)
        handle = await lifespan_startup(app)
        running = app.gateway.scheduler.running
        response = await ASGITestClient(app).post(
            "/v1/call", {"tenant": "home", "qid": suite.queries[0].qid})
        await lifespan_shutdown(handle)
        return running, response, app.gateway.scheduler.running

    running, response, stopped = asyncio.run(go())
    assert running is True
    assert response.status == 200
    assert stopped is False


def test_startup_is_idempotent_over_a_prestarted_gateway(suite):
    async def go():
        app = make_app(suite)
        await app.gateway.start()
        async with app:  # must not double-start
            return await ASGITestClient(app).get("/healthz")

    assert asyncio.run(go()).status == 200

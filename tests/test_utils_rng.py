"""Tests for repro.utils.rng."""

import numpy as np

from repro.utils.rng import DEFAULT_ROOT_SEED, RngFactory, derive_rng


class TestDeriveRng:
    def test_same_stream_same_sequence(self):
        a = derive_rng("llm", "llama", 3).standard_normal(8)
        b = derive_rng("llm", "llama", 3).standard_normal(8)
        np.testing.assert_array_equal(a, b)

    def test_different_streams_differ(self):
        a = derive_rng("llm", "llama", 3).standard_normal(8)
        b = derive_rng("llm", "llama", 4).standard_normal(8)
        assert not np.array_equal(a, b)

    def test_root_seed_changes_sequence(self):
        a = derive_rng("s", root_seed=1).standard_normal(4)
        b = derive_rng("s", root_seed=2).standard_normal(4)
        assert not np.array_equal(a, b)

    def test_default_root_seed_is_documented_constant(self):
        a = derive_rng("s").standard_normal(4)
        b = derive_rng("s", root_seed=DEFAULT_ROOT_SEED).standard_normal(4)
        np.testing.assert_array_equal(a, b)


class TestRngFactory:
    def test_stream_reproducible(self):
        factory = RngFactory(7)
        a = factory.stream("x").integers(0, 1000, size=5)
        b = factory.stream("x").integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_spawn_namespacing(self):
        parent = RngFactory(7)
        child_a = parent.spawn("worker", 1)
        child_b = parent.spawn("worker", 2)
        seq_a = child_a.stream("s").standard_normal(4)
        seq_b = child_b.stream("s").standard_normal(4)
        assert not np.array_equal(seq_a, seq_b)

    def test_spawn_deterministic(self):
        a = RngFactory(7).spawn("w", 1).stream("s").standard_normal(4)
        b = RngFactory(7).spawn("w", 1).stream("s").standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_numeric_and_string_parts_mix(self):
        factory = RngFactory(0)
        rng = factory.stream("a", 1, 2.5)
        assert isinstance(rng, np.random.Generator)

"""Tests for the Jetson nvpmodel power-mode layer."""

import pytest

from repro.hardware import (
    JETSON_AGX_ORIN,
    InferenceRequest,
    POWER_MODES,
    PowerMode,
    apply_power_mode,
    orin_in_mode,
    simulate_inference,
)


def request():
    return InferenceRequest(params_b=8.0, bits_per_weight=4.85,
                            prompt_tokens=3000, generated_tokens=150,
                            context_window=16384, jitter_stream="pm")


class TestPowerModeDefinition:
    def test_presets(self):
        assert {"MAXN", "30W", "15W"} == set(POWER_MODES)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            PowerMode("bad", 1.5, 1.0, 1.0)
        with pytest.raises(ValueError):
            PowerMode("bad", 1.0, 0.0, 1.0)

    def test_maxn_is_identity(self):
        device = apply_power_mode(JETSON_AGX_ORIN, "MAXN")
        assert device.membw_gbs == JETSON_AGX_ORIN.membw_gbs
        assert device.prefill_tokens_per_s_8b == JETSON_AGX_ORIN.prefill_tokens_per_s_8b

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            orin_in_mode("50W")

    def test_case_insensitive(self):
        assert orin_in_mode("15w").name.endswith("15w")


class TestCappedBehaviour:
    def test_lower_cap_slower(self):
        maxn = simulate_inference(request(), device=orin_in_mode("MAXN"))
        w15 = simulate_inference(request(), device=orin_in_mode("15W"))
        assert w15.total_s > maxn.total_s * 1.5

    def test_lower_cap_less_power(self):
        maxn = simulate_inference(request(), device=orin_in_mode("MAXN"))
        w15 = simulate_inference(request(), device=orin_in_mode("15W"))
        assert w15.avg_power_w < maxn.avg_power_w

    def test_monotone_across_presets(self):
        times = []
        powers = []
        for mode in ("MAXN", "30W", "15W"):
            trace = simulate_inference(request(), device=orin_in_mode(mode))
            times.append(trace.total_s)
            powers.append(trace.avg_power_w)
        assert times == sorted(times)
        assert powers == sorted(powers, reverse=True)

    def test_energy_tradeoff_is_nontrivial(self):
        # capping power does not cap energy proportionally: slower runs
        # burn idle power longer — the trade-off the ablation quantifies
        maxn = simulate_inference(request(), device=orin_in_mode("MAXN"))
        w15 = simulate_inference(request(), device=orin_in_mode("15W"))
        power_ratio = w15.avg_power_w / maxn.avg_power_w
        energy_ratio = w15.energy_j / maxn.energy_j
        assert energy_ratio > power_ratio * 1.3

    def test_original_profile_untouched(self):
        before = JETSON_AGX_ORIN.membw_gbs
        orin_in_mode("15W")
        assert JETSON_AGX_ORIN.membw_gbs == before

"""Tests for the baseline agents."""

import pytest

from repro.baselines import (
    DefaultAgent,
    GorillaAgent,
    ToolLLMAgent,
    ToolLLMMemoryError,
    build_baseline,
)
from repro.llm import SimulatedLLM
from repro.suites.bfcl import build_bfcl_suite
from repro.suites.geoengine import build_geoengine_suite


@pytest.fixture(scope="module")
def bfcl():
    return build_bfcl_suite(n_queries=30, n_train=40)


@pytest.fixture(scope="module")
def geo():
    return build_geoengine_suite(n_queries=20, n_train=40)


@pytest.fixture(scope="module")
def llm():
    return SimulatedLLM.from_registry("hermes2-pro-8b", "q4_K_M")


class TestBuildBaseline:
    def test_schemes(self, bfcl):
        assert isinstance(build_baseline("default", "qwen2-7b", "q4_0", bfcl), DefaultAgent)
        assert isinstance(build_baseline("gorilla", "qwen2-7b", "q4_0", bfcl), GorillaAgent)
        assert isinstance(build_baseline("toolllm", "qwen2-7b", "q4_0", bfcl), ToolLLMAgent)

    def test_unknown_scheme(self, bfcl):
        with pytest.raises(ValueError):
            build_baseline("react", "qwen2-7b", "q4_0", bfcl)


class TestDefaultAgent:
    def test_presents_all_tools_at_16k(self, llm, bfcl):
        agent = DefaultAgent(llm=llm, suite=bfcl)
        plan = agent.plan(bfcl.queries[0])
        assert len(plan.tools) == bfcl.n_tools
        assert plan.context_window == 16384

    def test_runs_episode(self, llm, bfcl):
        episode = DefaultAgent(llm=llm, suite=bfcl).run(bfcl.queries[0])
        assert episode.scheme == "default"
        assert episode.steps


class TestGorillaAgent:
    def test_retrieves_k_tools(self, llm, bfcl):
        agent = GorillaAgent(llm=llm, suite=bfcl, k=3)
        plan = agent.plan(bfcl.queries[0])
        assert len(plan.tools) == 3
        assert plan.context_window == 8192

    def test_docs_penalty_applied(self, bfcl):
        strong = GorillaAgent(llm=SimulatedLLM.from_registry("hermes2-pro-8b", "full"),
                              suite=bfcl)
        weak = GorillaAgent(llm=SimulatedLLM.from_registry("mistral-8b", "q4_0"),
                            suite=bfcl)
        assert strong.skill_multiplier > weak.skill_multiplier

    def test_sequential_retrieval_wider_and_dynamic(self, llm, geo):
        agent = GorillaAgent(llm=llm, suite=geo, k=3)
        query = geo.queries[0]
        plan = agent.plan(query)
        assert len(plan.tools) == 2 * 3 + 4
        retooled, overhead = agent.tools_for_step(query, 1, plan.tools, ["load_dataset"])
        assert overhead > 0
        assert retooled  # re-retrieval happened

    def test_gorilla_weak_on_sequential_chains(self, llm, geo):
        # the paper's headline Gorilla observation
        agent = GorillaAgent(llm=llm, suite=geo)
        accuracy = sum(agent.run(q).tool_accuracy for q in geo.queries) / len(geo.queries)
        assert accuracy < 0.3

    def test_gorilla_improves_bfcl_over_default(self, llm, bfcl):
        gorilla = GorillaAgent(llm=llm, suite=bfcl)
        default = DefaultAgent(llm=llm, suite=bfcl)
        g_acc = sum(gorilla.run(q).tool_accuracy for q in bfcl.queries)
        d_acc = sum(default.run(q).tool_accuracy for q in bfcl.queries)
        assert g_acc >= d_acc


class TestToolLLMAgent:
    def test_default_config_exceeds_orin_memory(self, llm, bfcl):
        # paper: "its tree-based exploration could not fit on the board"
        agent = ToolLLMAgent(llm=llm, suite=bfcl)
        assert not agent.fits_device()
        with pytest.raises(ToolLLMMemoryError):
            agent.run(bfcl.queries[0])

    def test_reduced_config_fits_and_runs(self, llm, bfcl):
        agent = ToolLLMAgent(llm=llm, suite=bfcl, n_branches=2, context_window=4096)
        assert agent.fits_device()
        episode = agent.run(bfcl.queries[0])
        assert episode.scheme == "toolllm"
        # tree search spends extra LLM calls on node expansions
        assert episode.n_llm_calls > 2

    def test_memory_enforcement_can_be_disabled(self, llm, bfcl):
        agent = ToolLLMAgent(llm=llm, suite=bfcl, enforce_memory=False)
        episode = agent.run(bfcl.queries[0])
        assert episode.steps

    def test_memory_grows_with_branches(self, llm, bfcl):
        narrow = ToolLLMAgent(llm=llm, suite=bfcl, n_branches=2)
        wide = ToolLLMAgent(llm=llm, suite=bfcl, n_branches=16)
        assert wide.memory_requirement_gb() > narrow.memory_requirement_gb()

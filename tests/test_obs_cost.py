"""Cost ledger: per-tenant token accounting and the degradation readout.

The paper's claim made measurable: when a tenant's catalog downshifts
(``full`` → ``compressed`` → ``minimal``), the per-request tool-token
cost the ledger records must shrink — the ``by_variant`` breakdown is
the "less is more" savings, quantified per served request.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.llm.tokens import tool_prompt_tokens
from repro.obs import CostLedger, CostRecord, plan_tool_tokens
from repro.serving import Gateway, ServingConfig, SessionManager, run_load
from repro.suites import load_suite
from repro.tools.catalog import load_catalog


# ----------------------------------------------------------------------
# ledger mechanics
# ----------------------------------------------------------------------
def test_ledger_accumulates_per_tenant_and_per_variant():
    ledger = CostLedger()
    ledger.record(CostRecord("home", "full", 500, prompt_tokens=40,
                             completion_tokens=10, llm_calls=2,
                             catalog_version="abc123"))
    ledger.record(CostRecord("home", "compressed", 300, prompt_tokens=30,
                             completion_tokens=8, llm_calls=1))
    ledger.record(CostRecord("office", "full", 200))
    snapshot = ledger.snapshot()

    assert snapshot["total"]["requests"] == 3
    assert snapshot["total"]["tool_prompt_tokens"] == 1000
    assert snapshot["total"]["total_tokens"] == 40 + 10 + 30 + 8

    home = snapshot["by_tenant"]["home"]
    assert home["requests"] == 2
    assert home["catalog_version"] == "abc123"
    assert home["by_variant"]["full"]["tool_prompt_tokens"] == 500
    assert home["by_variant"]["compressed"]["tool_prompt_tokens"] == 300
    assert home["by_variant"]["full"]["mean_tool_prompt_tokens"] == 500.0

    office = snapshot["by_tenant"]["office"]
    assert office["requests"] == 1
    assert "catalog_version" not in office


def test_snapshot_is_json_plain_and_detached():
    ledger = CostLedger()
    ledger.record(CostRecord("home", "full", 100))
    snapshot = ledger.snapshot()
    snapshot["by_tenant"]["home"]["requests"] = 999  # mutate the copy
    assert ledger.snapshot()["by_tenant"]["home"]["requests"] == 1


def test_plan_tool_tokens_matches_the_catalog_estimator():
    catalog = load_catalog("edgehome")
    tools = list(catalog)[:5]

    class _Plan:
        pass

    plan = _Plan()
    plan.tools = tools
    assert plan_tool_tokens(plan) == sum(
        tool_prompt_tokens(tool) for tool in tools)
    # plans without a tool list (or with an empty one) cost zero
    assert plan_tool_tokens(object()) == 0
    plan.tools = []
    assert plan_tool_tokens(plan) == 0


# ----------------------------------------------------------------------
# gateway integration
# ----------------------------------------------------------------------
def test_load_report_carries_the_cost_snapshot():
    suite = load_suite("edgehome", n_queries=6)
    config = ServingConfig(max_batch_size=4, max_wait_ms=2.0)
    report = run_load({"home": suite}, config, n_requests=6, concurrency=3)
    cost = report.cost
    assert cost["total"]["requests"] == 6
    assert cost["by_tenant"]["home"]["tool_prompt_tokens"] > 0
    assert cost["by_tenant"]["home"]["catalog_version"] == \
        suite.catalog.version
    assert list(cost["by_tenant"]["home"]["by_variant"]) == ["full"]


def test_variant_downshift_shrinks_recorded_tool_tokens():
    """Hot-swapping a tenant to the compressed catalog must show up as a
    lower per-request tool-token mean in the ledger.

    The ``compressed`` rung keeps the tool *selections* identical while
    shrinking every description, so its mean is strictly lower.  (The
    ``minimal`` rung is deliberately not asserted here: its terser
    descriptions can degrade retrieval enough that a query falls back to
    a wider tool selection, and the ledger faithfully reports that the
    per-request cost went *up* — which is exactly the regression the
    ledger exists to expose.)
    """
    suite = load_suite("edgehome", n_queries=8)
    base = suite.catalog

    async def scenario():
        sessions = SessionManager()
        sessions.register("home", suite)
        config = ServingConfig(max_batch_size=4, max_wait_ms=2.0)
        async with Gateway(sessions, config=config) as gateway:
            for query in suite.queries[:4]:
                await gateway.submit("home", query)
            gateway.update_catalog("home", base.at("compressed"))
            for query in suite.queries[:4]:
                await gateway.submit("home", query)
            return gateway.costs()

    cost = asyncio.run(scenario())
    variants = cost["by_tenant"]["home"]["by_variant"]
    assert set(variants) == {"full", "compressed"}
    assert variants["full"]["requests"] == 4
    assert variants["compressed"]["requests"] == 4
    assert (variants["compressed"]["mean_tool_prompt_tokens"]
            < variants["full"]["mean_tool_prompt_tokens"])
    # the swap is visible in the recorded catalog version too
    assert cost["by_tenant"]["home"]["catalog_version"] != base.version


def test_cost_ledger_validation_of_inputs():
    bucket_total = CostLedger().snapshot()["total"]
    assert bucket_total["requests"] == 0
    assert bucket_total["mean_tool_prompt_tokens"] == 0.0
    with pytest.raises(TypeError):
        CostRecord("home", "full")  # tool_prompt_tokens is required

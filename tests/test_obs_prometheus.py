"""Prometheus text-exposition rendering: format validity, label
escaping, histogram bucket monotonicity, and the gateway integration.

``_parse_exposition`` is a small strict parser for the subset of the
format the renderer emits — every sample line must match the exposition
grammar and belong to a family declared by a preceding ``# TYPE`` line —
so "parses as valid Prometheus text" is checked structurally rather than
by eyeballing strings.
"""

from __future__ import annotations

import asyncio
import re

import pytest

from repro.obs import escape_label_value, render_prometheus
from repro.serving import Gateway, ServingConfig, SessionManager, Telemetry
from repro.suites import load_suite

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)$")
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>.*)"$')


def _split_labels(body: str) -> dict[str, str]:
    """Split ``k1="v1",k2="v2"`` respecting escaped quotes."""
    labels: dict[str, str] = {}
    if not body:
        return labels
    parts, depth, current = [], False, []
    for char in body:
        if char == '"' and (not current or current[-1] != "\\"):
            depth = not depth
        if char == "," and not depth:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    for part in parts:
        match = _LABEL.match(part)
        assert match, f"malformed label pair: {part!r}"
        labels[match.group("key")] = match.group("value")
    return labels


def _parse_exposition(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse exposition text into ``{family: [(labels, value), ...]}``.

    Asserts the structural rules: HELP/TYPE precede samples, sample
    names extend a declared family only by ``_bucket``/``_sum``/
    ``_count``, values are floats, and the text ends with a newline.
    """
    assert text.endswith("\n")
    families: dict[str, str] = {}
    samples: dict[str, list[tuple[dict, float]]] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in {"counter", "gauge", "histogram", "summary"}
            assert name not in families, f"family {name} declared twice"
            families[name] = kind
            continue
        assert not line.startswith("#"), f"unknown comment line: {line!r}"
        match = _SAMPLE.match(line)
        assert match, f"malformed sample line: {line!r}"
        name = match.group("name")
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in families or family in families, \
            f"sample {name} has no declared family"
        labels = _split_labels(match.group("labels") or "")
        value = float(match.group("value"))
        samples.setdefault(name, []).append((labels, value))
    return samples


# ----------------------------------------------------------------------
# label escaping
# ----------------------------------------------------------------------
def test_escape_label_value_covers_the_three_escapes():
    assert escape_label_value('a"b') == 'a\\"b'
    assert escape_label_value("a\\b") == "a\\\\b"
    assert escape_label_value("a\nb") == "a\\nb"
    # escaping order matters: a backslash introduced by quote-escaping
    # must not be double-escaped
    assert escape_label_value('\\"') == '\\\\\\"'
    assert escape_label_value("plain") == "plain"


def test_hostile_tenant_names_render_and_parse():
    snapshot = {"shed_requests_by_tenant": {'evil"tenant\n\\': 3}}
    samples = _parse_exposition(render_prometheus(snapshot))
    [(labels, value)] = samples["repro_shed_requests_total"]
    assert value == 3.0
    assert labels["tenant"] == 'evil\\"tenant\\n\\\\'


# ----------------------------------------------------------------------
# structure
# ----------------------------------------------------------------------
def test_real_snapshot_renders_valid_exposition_text():
    telemetry = Telemetry()
    for depth in (1, 2, 3):
        telemetry.record_admission(depth)
    for size in (2, 2, 4):
        telemetry.record_flush(size)
    telemetry.record_completion(0.010)
    telemetry.record_completion(0.030)
    telemetry.record_fault("process.execute")
    telemetry.record_degradation("home", "compressed", "down")
    samples = _parse_exposition(render_prometheus(telemetry.snapshot()))
    assert samples["repro_requests_admitted_total"] == [({}, 3.0)]
    assert samples["repro_requests_completed_total"] == [({}, 2.0)]
    [(labels, value)] = samples["repro_faults_injected_total"]
    assert (labels, value) == ({"hook": "process.execute"}, 1.0)
    [(labels, value)] = samples["repro_degrade_transitions_total"]
    assert labels == {"tenant": "home", "direction": "down",
                      "rung": "compressed"}
    # gauge satellites are present
    assert samples["repro_uptime_seconds"][0][1] >= 0.0
    assert samples["repro_snapshot_seq"][0][1] == 1.0


def test_energy_carbon_and_budget_families_render():
    """The carbon/power subsystem's three families survive the strict
    parser: per-tenant joules and grams, per-scope budget transitions."""
    telemetry = Telemetry()
    telemetry.record_energy("home", 12.5, 0.002)
    telemetry.record_energy("home", 7.5, 0.001)
    telemetry.record_energy("office", 5.0, 0.0005)
    telemetry.record_budget_transition("home", "compressed", "down")
    telemetry.record_budget_transition("device", "30W", "down")
    telemetry.record_budget_transition("device", "MAXN", "up")
    samples = _parse_exposition(render_prometheus(telemetry.snapshot()))
    energy = {labels["tenant"]: value
              for labels, value in samples["repro_energy_joules_total"]}
    assert energy == {"home": 20.0, "office": 5.0}
    carbon = {labels["tenant"]: value
              for labels, value in samples["repro_carbon_grams_total"]}
    assert carbon == {"home": pytest.approx(0.003), "office": 0.0005}
    transitions = {(labels["scope"], labels["direction"], labels["target"]):
                   value
                   for labels, value in samples["repro_budget_transitions_total"]}
    assert transitions == {("home", "down", "compressed"): 1.0,
                           ("device", "down", "30W"): 1.0,
                           ("device", "up", "MAXN"): 1.0}


def test_histogram_buckets_are_cumulative_and_monotonic():
    snapshot = {"batch_size_histogram": {"2": 3, "8": 1, "4": 2}}
    samples = _parse_exposition(render_prometheus(snapshot))
    buckets = samples["repro_batch_size_bucket"]
    bounds = [labels["le"] for labels, _ in buckets]
    assert bounds == ["2", "4", "8", "+Inf"]
    counts = [value for _, value in buckets]
    assert counts == sorted(counts), "bucket counts must be monotonic"
    assert counts == [3.0, 5.0, 6.0, 6.0]
    assert samples["repro_batch_size_count"] == [({}, 6.0)]
    assert samples["repro_batch_size_sum"] == [({}, 2 * 3 + 4 * 2 + 8 * 1)]


def test_latency_summary_quantiles_carry_the_window_label():
    snapshot = {"latency_p50_ms": 10.0, "latency_p95_ms": 20.0,
                "latency_p99_ms": 30.0, "latency_mean_ms": 12.0,
                "requests_completed": 4}
    samples = _parse_exposition(render_prometheus(snapshot))
    quantiles = {labels["quantile"]: value
                 for labels, value in samples["repro_request_latency_seconds"]}
    assert quantiles == {"0.5": 0.010, "0.95": 0.020, "0.99": 0.030}
    for labels, _ in samples["repro_request_latency_seconds"]:
        assert labels["window"] == "ring"
    assert samples["repro_request_latency_seconds_count"] == [({}, 4.0)]
    assert samples["repro_request_latency_seconds_sum"] == \
        [({}, pytest.approx(4 * 0.012))]


def test_missing_keys_render_absent_families_not_errors():
    text = render_prometheus({})
    assert _parse_exposition(text) == {}
    # a partial (older) snapshot renders only what it has
    samples = _parse_exposition(render_prometheus({"requests_admitted": 7}))
    assert list(samples) == ["repro_requests_admitted_total"]


def test_cost_snapshot_renders_per_tenant_counters():
    cost = {"total": {"requests": 3},
            "by_tenant": {
                "home": {"requests": 2, "tool_prompt_tokens": 700,
                         "prompt_tokens": 40, "completion_tokens": 10,
                         "llm_calls": 2},
                "office": {"requests": 1, "tool_prompt_tokens": 250,
                           "prompt_tokens": 20, "completion_tokens": 5,
                           "llm_calls": 1}}}
    samples = _parse_exposition(render_prometheus({}, cost=cost))
    tokens = {labels["tenant"]: value for labels, value
              in samples["repro_cost_tool_prompt_tokens_total"]}
    assert tokens == {"home": 700.0, "office": 250.0}
    requests = {labels["tenant"]: value for labels, value
                in samples["repro_cost_requests_total"]}
    assert requests == {"home": 2.0, "office": 1.0}


def test_custom_namespace_prefixes_every_family():
    text = render_prometheus({"requests_admitted": 1}, namespace="edge")
    assert "edge_requests_admitted_total 1" in text
    assert "repro_" not in text


# ----------------------------------------------------------------------
# gateway integration
# ----------------------------------------------------------------------
def test_gateway_metrics_text_is_valid_and_live():
    suite = load_suite("edgehome", n_queries=4)

    async def scenario():
        sessions = SessionManager()
        sessions.register("home", suite)
        config = ServingConfig(max_batch_size=4, max_wait_ms=2.0)
        async with Gateway(sessions, config=config) as gateway:
            await asyncio.gather(*(
                gateway.submit("home", query) for query in suite.queries))
            return gateway.metrics_text()

    samples = _parse_exposition(asyncio.run(scenario()))
    assert samples["repro_requests_completed_total"] == [({}, 4.0)]
    # the cost ledger rides along in the same exposition
    [(labels, value)] = samples["repro_cost_requests_total"]
    assert labels == {"tenant": "home"}
    assert value == 4.0
    assert samples["repro_cost_tool_prompt_tokens_total"][0][1] > 0.0
    # every gateway meters energy/carbon, so the families are live too
    [(labels, value)] = samples["repro_energy_joules_total"]
    assert labels == {"tenant": "home"}
    assert value > 0.0
    [(labels, value)] = samples["repro_carbon_grams_total"]
    assert labels == {"tenant": "home"}
    assert value > 0.0

"""Plan-result memoization: hit/miss accounting and bitwise equivalence."""

import asyncio

import pytest

from repro.serving import Gateway, ServingConfig, SessionManager
from repro.serving.gateway import _PlanCache
from repro.specs import ServingSpec, SuiteSpec, TenantSpec
from repro.suites import load_suite


@pytest.fixture(scope="module")
def suite():
    return load_suite("edgehome", n_queries=8)


def serve_queries(suite, config, queries, rounds=1):
    """Drive ``queries`` through a fresh gateway ``rounds`` times."""

    async def scenario():
        sessions = SessionManager()
        sessions.register("home", suite)
        async with Gateway(sessions, config=config) as gateway:
            episodes = []
            for _ in range(rounds):
                responses = await asyncio.gather(*(
                    gateway.submit("home", query) for query in queries))
                episodes.append([r.episode for r in responses])
            return episodes, gateway.metrics()

    return asyncio.run(scenario())


def test_cached_replies_bitwise_identical(suite):
    config = ServingConfig(max_batch_size=4, max_wait_ms=1.0,
                           plan_cache_size=64)
    (first, second), metrics = serve_queries(
        suite, config, suite.queries, rounds=2)
    assert metrics["plan_cache_hits"] >= len(suite.queries)
    for fresh, cached in zip(first, second):
        assert fresh == cached  # dataclass equality: every field, bitwise


def test_cache_matches_uncached_gateway(suite):
    queries = suite.queries[:6]
    cached_config = ServingConfig(max_batch_size=4, max_wait_ms=1.0,
                                  plan_cache_size=64)
    plain_config = ServingConfig(max_batch_size=4, max_wait_ms=1.0)
    (cached_round,), _ = serve_queries(suite, cached_config, queries)
    (plain_round,), plain_metrics = serve_queries(suite, plain_config, queries)
    assert cached_round == plain_round
    # disabled cache records no lookups at all
    assert plain_metrics["plan_cache_hits"] == 0
    assert plain_metrics["plan_cache_misses"] == 0


def test_hit_miss_accounting(suite):
    queries = suite.queries[:4]
    config = ServingConfig(max_batch_size=4, max_wait_ms=1.0,
                           plan_cache_size=64)
    _, metrics = serve_queries(suite, config, queries, rounds=3)
    assert metrics["plan_cache_misses"] == len(queries)
    assert metrics["plan_cache_hits"] == 2 * len(queries)
    assert metrics["plan_cache_hit_rate"] == pytest.approx(2 / 3)


def test_serving_spec_enables_cache(suite):
    spec = ServingSpec(
        tenants=(TenantSpec("home", SuiteSpec("edgehome", n_queries=8)),),
        max_batch_size=4, max_wait_ms=1.0, plan_cache_size=16)
    from repro.session import open_session

    session = open_session(spec)

    async def scenario():
        async with session.serve() as gateway:
            query = gateway.sessions.get("home").suite.queries[0]
            a = await gateway.submit("home", query)
            b = await gateway.submit("home", query)
            return a.episode, b.episode, gateway.metrics()

    first, second, metrics = asyncio.run(scenario())
    assert first == second
    assert metrics["plan_cache_hits"] == 1
    assert metrics["plan_cache_misses"] == 1


class TestPlanCacheLRU:
    def test_eviction_order(self):
        cache = _PlanCache(capacity=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # refresh "a": "b" is now oldest
        cache.put(("c",), 3)
        assert len(cache) == 2
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1
        assert cache.get(("c",)) == 3

    def test_key_includes_query_text(self, suite):
        query = suite.queries[0]
        key = _PlanCache.key("home", query, "lis-k3", "m", "q")
        assert query.qid in key
        assert query.text in key

    def test_clear(self):
        cache = _PlanCache(capacity=4)
        cache.put(("a",), 1)
        cache.clear()
        assert len(cache) == 0

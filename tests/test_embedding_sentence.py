"""Tests for repro.embedding.sentence — the semantic property LiS relies on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import SentenceEmbedder, cosine_similarity


@pytest.fixture(scope="module")
def embedder():
    return SentenceEmbedder()


class TestEncodeBasics:
    def test_dim_default_768(self, embedder):
        assert embedder.encode_one("weather in Paris").shape == (768,)

    def test_unit_norm(self, embedder):
        vec = embedder.encode_one("translate a document to French")
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_empty_text_zero_vector(self, embedder):
        assert np.linalg.norm(embedder.encode_one("")) == 0.0

    def test_deterministic(self, embedder):
        a = embedder.encode_one("detect ships in satellite imagery")
        b = SentenceEmbedder().encode_one("detect ships in satellite imagery")
        np.testing.assert_allclose(a, b)

    def test_batch_encode_shape(self, embedder):
        batch = embedder.encode(["a sentence", "another one", ""])
        assert batch.shape == (3, 768)

    def test_encode_rejects_bare_string(self, embedder):
        with pytest.raises(TypeError):
            embedder.encode("not a list")

    def test_encode_empty_batch(self, embedder):
        assert embedder.encode([]).shape == (0, 768)

    def test_small_dim_supported(self):
        assert SentenceEmbedder(dim=64).encode_one("hello world").shape == (64,)

    def test_tiny_dim_rejected(self):
        with pytest.raises(ValueError):
            SentenceEmbedder(dim=4)


class TestSemanticProperty:
    """Paraphrases must rank above unrelated text: the LiS load-bearing property."""

    PARAPHRASE_PAIRS = [
        ("get the weather forecast for a city",
         "fetch current weather conditions at a location"),
        ("translate text into another language",
         "convert a sentence to French or Spanish"),
        ("detect objects in satellite imagery",
         "identify buildings and vehicles in an aerial image"),
        ("plot a chart of the results",
         "visualize the data as a graph"),
        ("compute the mean and standard deviation",
         "calculate average and statistical deviation of numbers"),
    ]
    DISTRACTORS = [
        "book a table at an italian restaurant",
        "send an email to my manager",
        "what is the capital of France",
        "set an alarm for 7 am",
    ]

    @pytest.mark.parametrize("text_a,text_b", PARAPHRASE_PAIRS)
    def test_paraphrase_beats_every_distractor(self, embedder, text_a, text_b):
        paraphrase_sim = embedder.similarity(text_a, text_b)
        for distractor in self.DISTRACTORS:
            assert paraphrase_sim > embedder.similarity(text_a, distractor), distractor

    def test_identical_text_maximal(self, embedder):
        text = "plot the vqa captions in the uk"
        assert embedder.similarity(text, text) == pytest.approx(1.0)

    def test_synonym_only_overlap_is_positive(self, embedder):
        sim = embedder.similarity("fetch the forecast", "retrieve weather conditions")
        assert sim > 0.25

    def test_unrelated_lower_than_related(self, embedder):
        related = embedder.similarity("stock price of a ticker", "share market quote")
        unrelated = embedder.similarity("stock price of a ticker", "segment rivers in imagery")
        assert related > unrelated


class TestCosineSimilarity:
    def test_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_zero_vector_safe(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    @given(st.lists(st.floats(-5, 5), min_size=4, max_size=4))
    @settings(max_examples=50)
    def test_bounded(self, values):
        vec = np.asarray(values)
        other = np.ones(4)
        assert -1.0001 <= cosine_similarity(vec, other) <= 1.0001


class TestNamespaces:
    def test_different_namespace_different_projection(self):
        a = SentenceEmbedder(seed_namespace="a").encode_one("weather")
        b = SentenceEmbedder(seed_namespace="b").encode_one("weather")
        assert not np.allclose(a, b)

    def test_features_exposed(self):
        features = SentenceEmbedder().features("plot the weather")
        families = {family for family, _ in features}
        assert {"token", "concept", "trigram"} <= families

"""Tests for repro.vectorstore.flat and the shared VectorIndex interface."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.vectorstore import FlatIndex


@pytest.fixture
def small_index():
    index = FlatIndex(dim=3, metric="cosine")
    index.add(np.eye(3), ids=[10, 20, 30])
    return index


class TestAdd:
    def test_len(self, small_index):
        assert len(small_index) == 3

    def test_auto_ids_continue(self):
        index = FlatIndex(dim=2)
        index.add(np.ones((2, 2)))
        index.add(np.zeros((1, 2)))
        assert index.ids.tolist() == [0, 1, 2]

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            FlatIndex(dim=3).add(np.ones((1, 2)))

    def test_duplicate_ids_rejected(self, small_index):
        with pytest.raises(ValueError):
            small_index.add(np.ones((1, 3)), ids=[10])

    def test_duplicate_ids_within_batch_rejected(self):
        with pytest.raises(ValueError):
            FlatIndex(dim=2).add(np.ones((2, 2)), ids=[5, 5])

    def test_ids_length_mismatch(self):
        with pytest.raises(ValueError):
            FlatIndex(dim=2).add(np.ones((2, 2)), ids=[1])

    def test_reconstruct(self, small_index):
        np.testing.assert_array_equal(small_index.reconstruct(20), [0.0, 1.0, 0.0])

    def test_reconstruct_missing(self, small_index):
        with pytest.raises(KeyError):
            small_index.reconstruct(99)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            FlatIndex(dim=0)


class TestSearch:
    def test_exact_nearest(self, small_index):
        result = small_index.search_one(np.array([0.9, 0.1, 0.0]), k=1)
        assert result.top()[1] == 10

    def test_k_larger_than_index_clamped(self, small_index):
        result = small_index.search_one(np.ones(3), k=10)
        assert len(result) == 3

    def test_scores_sorted_best_first(self, small_index):
        result = small_index.search_one(np.array([0.7, 0.5, 0.1]), k=3)
        assert list(result.scores) == sorted(result.scores, reverse=True)

    def test_l2_metric_orders_ascending(self):
        index = FlatIndex(dim=2, metric="l2")
        index.add(np.array([[0.0, 0.0], [5.0, 5.0]]), ids=[1, 2])
        result = index.search_one(np.array([0.1, 0.0]), k=2)
        assert result.ids.tolist() == [1, 2]
        assert list(result.scores) == sorted(result.scores)

    def test_empty_index_returns_empty_results(self):
        result = FlatIndex(dim=2).search_one(np.ones(2), k=3)
        assert len(result) == 0
        assert result.mean_score() == 0.0

    def test_invalid_k(self, small_index):
        with pytest.raises(ValueError):
            small_index.search_one(np.ones(3), k=0)

    def test_batch_search(self, small_index):
        results = small_index.search(np.eye(3), k=1)
        assert [r.top()[1] for r in results] == [10, 20, 30]

    def test_mean_score(self, small_index):
        result = small_index.search_one(np.array([1.0, 0.0, 0.0]), k=2)
        assert result.mean_score() == pytest.approx(float(np.mean(result.scores)))

    def test_top_on_empty_raises(self):
        result = FlatIndex(dim=2).search_one(np.ones(2), k=1)
        with pytest.raises(ValueError):
            result.top()


class TestSearchProperties:
    @given(
        npst.arrays(np.float64, (8, 4), elements=st.floats(-3, 3)),
        npst.arrays(np.float64, (4,), elements=st.floats(-3, 3)),
    )
    @settings(max_examples=40, deadline=None)
    def test_top1_matches_bruteforce_cosine(self, vectors, query):
        index = FlatIndex(dim=4, metric="cosine")
        index.add(vectors)
        result = index.search_one(query, k=8)
        norms = np.linalg.norm(vectors, axis=1)
        q_norm = np.linalg.norm(query)
        if q_norm == 0:
            return
        # normalize before the dot product (like the index does): dividing
        # the raw dot by a *product* of norms underflows to denormals for
        # tiny-magnitude vectors and loses all precision
        safe = np.where(norms == 0, 1.0, norms)
        sims = (vectors / safe[:, None]) @ (query / q_norm)
        sims[norms == 0] = 0.0
        assert result.scores[0] == pytest.approx(float(np.max(sims)), abs=1e-9)

    @given(npst.arrays(np.float64, (6, 3), elements=st.floats(-2, 2)))
    @settings(max_examples=40, deadline=None)
    def test_result_ids_are_stored_ids(self, vectors):
        index = FlatIndex(dim=3)
        ids = [100 + i for i in range(6)]
        index.add(vectors, ids=ids)
        result = index.search_one(np.ones(3), k=4)
        assert set(result.ids.tolist()) <= set(ids)

"""The ``openai_http`` engine against a live (in-process) mock backend.

Socket-level integration: :class:`MockOpenAIServer` hosts a scripted
OpenAI-compatible endpoint on an ephemeral localhost port, and the
adapter talks to it over real HTTP — wire payload shape, native and
fenced tool-call extraction, injected-failure retries, Bearer auth, a
full Session run, and the CLI entrypoint.  No network beyond loopback,
nothing beyond the stdlib.
"""

from __future__ import annotations

import pytest

from repro.cli import main as cli_main
from repro.engines import EngineError, OpenAIHttpEngine
from repro.engines.testing import (
    MockOpenAIApp,
    MockOpenAIServer,
    content_message,
    fenced_call_message,
    tool_call_message,
)
from repro.session import open_session
from repro.specs import AgentSpec, EngineSpec
from repro.suites import load_suite
from repro.tools.schema import ToolCall

MODEL, QUANT = "hermes2-pro-8b", "q4_K_M"


def _spec(base_url: str, **overrides) -> EngineSpec:
    defaults = dict(name="openai_http", base_url=base_url,
                    timeout_s=10.0, retries=2, retry_backoff_ms=1.0)
    defaults.update(overrides)
    return EngineSpec(**defaults)


def _quiet(engine: OpenAIHttpEngine) -> OpenAIHttpEngine:
    engine._sleep = lambda seconds: None
    return engine


# ----------------------------------------------------------------------
# wire format + extraction
# ----------------------------------------------------------------------
class TestWireFormat:
    def test_payload_shape_and_native_extraction(self):
        suite = load_suite("edgehome", n_queries=2)
        tools = list(suite.registry)[:3]
        app = MockOpenAIApp(reply_fn=lambda payload: tool_call_message(
            payload["tools"][0]["function"]["name"], {"room": "kitchen"}))
        with MockOpenAIServer(app) as server:
            engine = OpenAIHttpEngine(_spec(server.base_url),
                                      wire_model="qwen2.5-3b")
            reply = engine.generate(
                [{"role": "user", "content": "lights please"}], tools=tools)

        assert reply.tool_calls == (
            ToolCall(tools[0].name, {"room": "kitchen"}),)
        assert reply.finish_reason == "tool_calls"
        assert reply.usage is not None and reply.usage.completion_tokens == 32
        payload = app.requests[0]
        assert payload["model"] == "qwen2.5-3b"
        assert payload["messages"] == [
            {"role": "user", "content": "lights please"}]
        assert payload["tool_choice"] == "auto"
        assert [t["function"]["name"] for t in payload["tools"]] == [
            tool.name for tool in tools]
        # every advertised tool crosses the wire as a function schema
        assert all(t["type"] == "function" for t in payload["tools"])

    def test_fenced_json_fallback_extraction(self):
        app = MockOpenAIApp(reply_fn=lambda payload: fenced_call_message(
            "set_thermostat", {"temp_c": 21}))
        with MockOpenAIServer(app) as server:
            engine = OpenAIHttpEngine(_spec(server.base_url))
            reply = engine.generate(
                [{"role": "user", "content": "warm it up"}], tools=[])
        assert reply.tool_calls == (ToolCall("set_thermostat", {"temp_c": 21}),)

    def test_error_report_in_content_becomes_signal(self):
        app = MockOpenAIApp(reply_fn=lambda payload: content_message(
            '{"error": "no such tool available"}'))
        with MockOpenAIServer(app) as server:
            engine = OpenAIHttpEngine(_spec(server.base_url))
            reply = engine.generate(
                [{"role": "user", "content": "hi"}], tools=[])
        assert reply.tool_calls == ()
        assert reply.error_signal == "no such tool available"

    def test_bearer_auth_header_sent(self):
        app = MockOpenAIApp()
        with MockOpenAIServer(app) as server:
            engine = OpenAIHttpEngine(
                _spec(server.base_url, api_key="sk-unit-test"))
            engine.generate([{"role": "user", "content": "hi"}], tools=[])
        assert app.headers[0].get("authorization") == "Bearer sk-unit-test"

    def test_no_auth_header_without_key(self):
        app = MockOpenAIApp()
        with MockOpenAIServer(app) as server:
            engine = OpenAIHttpEngine(_spec(server.base_url))
            engine.generate([{"role": "user", "content": "hi"}], tools=[])
        assert "authorization" not in app.headers[0]


# ----------------------------------------------------------------------
# retries over real sockets
# ----------------------------------------------------------------------
class TestRetries:
    def test_injected_failures_then_success(self):
        app = MockOpenAIApp(fail_first=2, fail_status=503)
        with MockOpenAIServer(app) as server:
            engine = _quiet(OpenAIHttpEngine(_spec(server.base_url)))
            reply = engine.generate(
                [{"role": "user", "content": "hi"}], tools=[])
        assert len(app.requests) == 3  # two 503s burned, third served
        assert reply.text == "[]"

    def test_budget_exhausted_is_actionable(self):
        app = MockOpenAIApp(fail_first=99, fail_status=500)
        with MockOpenAIServer(app) as server:
            engine = _quiet(OpenAIHttpEngine(_spec(server.base_url,
                                                   retries=1)))
            with pytest.raises(EngineError, match="2 attempt"):
                engine.generate([{"role": "user", "content": "hi"}], tools=[])
        assert len(app.requests) == 2

    def test_connection_refused_retries_then_fails(self):
        # an ephemeral port nothing listens on — pure OSError path
        engine = _quiet(OpenAIHttpEngine(
            _spec("http://127.0.0.1:9/v1", retries=1, timeout_s=0.5)))
        with pytest.raises(EngineError, match="last error"):
            engine.generate([{"role": "user", "content": "hi"}], tools=[])


# ----------------------------------------------------------------------
# the whole stack: Session and CLI runs backed by the mock server
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_session_run_over_http(self):
        app = MockOpenAIApp()  # default: call the first advertised tool
        with MockOpenAIServer(app) as server:
            session = open_session("edgehome", n_queries=3)
            run = session.run(AgentSpec(
                scheme="default", model=MODEL, quant=QUANT,
                engine=_spec(server.base_url)))

        assert len(run.episodes) == 3
        # one chat-completions request per executed step, all advertising
        # the full registry (the default scheme presents everything)
        assert len(app.requests) >= 3
        assert all(req["tools"] for req in app.requests)
        for episode in run.episodes:
            assert episode.steps  # the mock's calls flowed into records
            assert all(step.n_tools_presented > 0 for step in episode.steps)

    def test_session_run_scores_gold_replies_as_success(self):
        suite = load_suite("edgehome", n_queries=2)
        gold = {query.qid: query for query in suite.queries}
        served = iter([call
                       for query in suite.queries
                       for call in query.gold_calls])

        def reply_fn(payload):
            call = next(served, None)
            if call is None:  # a retry would drain past the gold script
                return content_message("script exhausted")
            return tool_call_message(call.tool, dict(call.arguments))

        app = MockOpenAIApp(reply_fn=reply_fn)
        with MockOpenAIServer(app) as server:
            session = open_session("edgehome", n_queries=2)
            run = session.run(AgentSpec(
                scheme="default", model=MODEL, quant=QUANT,
                engine=_spec(server.base_url)))

        # a backend that answers every step with the gold call aces the
        # paper's metrics — scoring is engine-agnostic
        assert run.summary.success_rate == 1.0
        for episode in run.episodes:
            assert episode.tool_accuracy
            assert len(episode.steps) == gold[episode.qid].n_steps

    def test_cli_run_with_engine_url(self, capsys):
        app = MockOpenAIApp()
        with MockOpenAIServer(app) as server:
            rc = cli_main(["run", "--suite", "edgehome", "-n", "2",
                           "--scheme", "default",
                           "--engine-url", server.base_url])
        assert rc == 0
        assert app.requests  # the run really went over the wire
        out = capsys.readouterr().out
        assert "success 95% CI" in out

"""Unit tests for the micro-batch scheduler (no agents involved)."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serving import (
    BatchScheduler,
    QueueFullError,
    SchedulerStoppedError,
    ServingConfig,
    Telemetry,
)


def run(coro):
    return asyncio.run(coro)


def echo_processor(batch):
    """Return each request's payload, tagged with its batch size."""
    return [(request.payload, request.batch_size) for request in batch]


async def start_scheduler(config, process=echo_processor, telemetry=None):
    scheduler = BatchScheduler(process, config, telemetry=telemetry)
    await scheduler.start()
    return scheduler


def test_flush_on_max_batch_size():
    async def scenario():
        telemetry = Telemetry()
        scheduler = await start_scheduler(
            ServingConfig(max_batch_size=4, max_wait_ms=10_000.0),
            telemetry=telemetry)
        futures = [scheduler.submit("t", i) for i in range(4)]
        results = await asyncio.gather(*futures)
        await scheduler.stop()
        return results, telemetry.snapshot()

    results, metrics = run(scenario())
    # a full batch flushed long before the (huge) deadline
    assert [payload for payload, _ in results] == [0, 1, 2, 3]
    assert all(size == 4 for _, size in results)
    assert metrics["batch_size_histogram"] == {"4": 1}


def test_flush_on_deadline_with_partial_batch():
    async def scenario():
        scheduler = await start_scheduler(
            ServingConfig(max_batch_size=64, max_wait_ms=5.0))
        futures = [scheduler.submit("t", i) for i in range(3)]
        results = await asyncio.wait_for(asyncio.gather(*futures), timeout=5.0)
        await scheduler.stop()
        return results

    results = run(scenario())
    assert all(size == 3 for _, size in results)


def test_round_robin_fairness_across_tenants():
    async def scenario():
        scheduler = await start_scheduler(
            ServingConfig(max_batch_size=6, max_wait_ms=50.0))
        # tenant "a" floods, tenant "b" sends one request
        futures = [scheduler.submit("a", f"a{i}") for i in range(5)]
        futures.append(scheduler.submit("b", "b0"))
        results = await asyncio.gather(*futures)
        await scheduler.stop()
        return results

    results = run(scenario())
    payloads = [payload for payload, _ in results[:-1]]
    b_result = results[-1]
    # b's single request rode the same (first) batch despite a's flood
    assert b_result == ("b0", 6)
    assert payloads == [f"a{i}" for i in range(5)]


def test_fairness_caps_flooding_tenant_in_cut_order():
    """With a full queue from one tenant plus one from another, the batch
    interleaves tenants instead of draining the flooder first."""
    captured = []

    def capture(batch):
        captured.append([request.payload for request in batch])
        return [None] * len(batch)

    async def scenario():
        scheduler = await start_scheduler(
            ServingConfig(max_batch_size=4, max_wait_ms=50.0), process=capture)
        futures = [scheduler.submit("a", f"a{i}") for i in range(4)]
        futures.append(scheduler.submit("b", "b0"))
        await asyncio.gather(*futures)
        await scheduler.stop()

    run(scenario())
    first_batch = captured[0]
    # round-robin: b0 lands inside the first batch of 4, not behind all of a
    assert "b0" in first_batch


def test_admission_control_queue_full():
    async def scenario():
        telemetry = Telemetry()
        # processor that blocks until released, so the queue backs up
        release = asyncio.Event()
        loop = asyncio.get_running_loop()

        def slow(batch):
            asyncio.run_coroutine_threadsafe(release.wait(), loop).result()
            return [None] * len(batch)

        scheduler = await start_scheduler(
            ServingConfig(max_batch_size=1, max_wait_ms=0.0, queue_capacity=2),
            process=slow, telemetry=telemetry)
        inflight = [scheduler.submit("t", 0)]
        await asyncio.sleep(0.05)  # let the first batch enter the worker
        inflight += [scheduler.submit("t", 1), scheduler.submit("t", 2)]
        with pytest.raises(QueueFullError):
            scheduler.submit("t", 3)
        release.set()
        await asyncio.gather(*inflight)
        await scheduler.stop()
        return telemetry.snapshot()

    metrics = run(scenario())
    assert metrics["requests_rejected"] == 1
    assert metrics["requests_admitted"] == 3


def test_submit_outside_lifecycle_raises():
    config = ServingConfig()
    scheduler = BatchScheduler(echo_processor, config)
    with pytest.raises(SchedulerStoppedError):
        scheduler.submit("t", 0)

    async def scenario():
        await scheduler.start()
        await scheduler.stop()
        with pytest.raises(SchedulerStoppedError):
            scheduler.submit("t", 0)

    run(scenario())


def test_processor_exception_fails_the_batch():
    def broken(batch):
        raise RuntimeError("kaboom")

    async def scenario():
        scheduler = await start_scheduler(
            ServingConfig(max_batch_size=2, max_wait_ms=1.0), process=broken)
        futures = [scheduler.submit("t", i) for i in range(2)]
        outcomes = await asyncio.gather(*futures, return_exceptions=True)
        await scheduler.stop()
        return outcomes

    outcomes = run(scenario())
    assert all(isinstance(outcome, RuntimeError) for outcome in outcomes)


def test_stop_drains_pending_requests():
    async def scenario():
        scheduler = await start_scheduler(
            ServingConfig(max_batch_size=8, max_wait_ms=10_000.0))
        # fewer than a full batch with a far deadline; stop() must not
        # strand them
        futures = [scheduler.submit("t", i) for i in range(3)]
        stop_task = asyncio.get_running_loop().create_task(scheduler.stop())
        results = await asyncio.gather(*futures)
        await stop_task
        return results

    results = run(scenario())
    assert [payload for payload, _ in results] == [0, 1, 2]


def test_config_validation():
    with pytest.raises(ValueError):
        ServingConfig(max_batch_size=0)
    with pytest.raises(ValueError):
        ServingConfig(max_wait_ms=-1.0)
    with pytest.raises(ValueError):
        ServingConfig(queue_capacity=0)


def test_abort_stop_fails_inflight_requests_fast():
    """stop(drain=False) with queued traffic: every pending future fails
    promptly with SchedulerStoppedError — none is processed, none hangs."""
    async def scenario():
        scheduler = await start_scheduler(
            ServingConfig(max_batch_size=64, max_wait_ms=10_000.0))
        futures = [scheduler.submit("t", i) for i in range(5)]
        await asyncio.wait_for(scheduler.stop(drain=False), timeout=2.0)
        outcomes = await asyncio.wait_for(
            asyncio.gather(*futures, return_exceptions=True), timeout=2.0)
        # post-stop submissions are rejected too
        with pytest.raises(SchedulerStoppedError):
            scheduler.submit("t", 99)
        return outcomes

    outcomes = run(scenario())
    assert len(outcomes) == 5
    assert all(isinstance(outcome, SchedulerStoppedError)
               for outcome in outcomes)


def test_abort_stop_with_batch_midflight_fails_queued_requests():
    """An abort while a batch is executing: the in-flight batch finishes,
    everything still queued behind it fails fast — nothing hangs."""
    async def scenario():
        release = asyncio.Event()
        loop = asyncio.get_running_loop()

        def slow(batch):
            asyncio.run_coroutine_threadsafe(release.wait(), loop).result()
            return [(request.payload, request.batch_size) for request in batch]

        scheduler = await start_scheduler(
            ServingConfig(max_batch_size=1, max_wait_ms=0.0),
            process=slow)
        inflight = scheduler.submit("t", 0)
        await asyncio.sleep(0.05)  # first batch is now inside the worker
        queued = [scheduler.submit("t", i) for i in range(1, 4)]
        stop_task = loop.create_task(scheduler.stop(drain=False))
        release.set()
        await asyncio.wait_for(stop_task, timeout=5.0)
        first = await asyncio.wait_for(inflight, timeout=2.0)
        rest = await asyncio.wait_for(
            asyncio.gather(*queued, return_exceptions=True), timeout=2.0)
        return first, rest

    first, rest = run(scenario())
    assert first == (0, 1)
    assert all(isinstance(outcome, SchedulerStoppedError) for outcome in rest)


def test_queue_full_error_reports_occupancy():
    async def scenario():
        release = asyncio.Event()
        loop = asyncio.get_running_loop()

        def slow(batch):
            asyncio.run_coroutine_threadsafe(release.wait(), loop).result()
            return [None] * len(batch)

        scheduler = await start_scheduler(
            ServingConfig(max_batch_size=1, max_wait_ms=0.0, queue_capacity=3),
            process=slow)
        inflight = [scheduler.submit("a", 0)]
        await asyncio.sleep(0.05)
        inflight += [scheduler.submit("a", 1), scheduler.submit("a", 2),
                     scheduler.submit("b", 3)]
        with pytest.raises(QueueFullError) as excinfo:
            scheduler.submit("b", 4)
        release.set()
        await asyncio.gather(*inflight)
        await scheduler.stop()
        return excinfo.value

    error = run(scenario())
    assert error.depth == 3
    assert error.capacity == 3
    # busiest tenant first
    assert error.per_tenant == {"a": 2, "b": 1}
    assert list(error.per_tenant) == ["a", "b"]
    assert "a=2" in str(error) and "b=1" in str(error)


def test_quarantine_isolates_poisoned_request():
    """One poisoned request in a batch fails alone; its co-batched
    neighbors are re-run solo and still succeed."""
    def poisonable(batch):
        if any(request.payload == "bad" for request in batch):
            raise RuntimeError("poisoned batch")
        return [(request.payload, request.batch_size) for request in batch]

    async def scenario():
        telemetry = Telemetry()
        scheduler = await start_scheduler(
            ServingConfig(max_batch_size=4, max_wait_ms=10_000.0),
            process=poisonable, telemetry=telemetry)
        futures = [scheduler.submit("t", payload)
                   for payload in ["ok0", "ok1", "bad", "ok2"]]
        outcomes = await asyncio.wait_for(
            asyncio.gather(*futures, return_exceptions=True), timeout=5.0)
        await scheduler.stop()
        return outcomes, telemetry.snapshot()

    outcomes, metrics = run(scenario())
    assert [payload for payload, _ in (outcomes[0], outcomes[1], outcomes[3])] \
        == ["ok0", "ok1", "ok2"]
    assert isinstance(outcomes[2], RuntimeError)
    assert metrics["batch_quarantines"] == 1


def test_worker_shutdown_raises_with_stack_when_stuck():
    """A batch worker that cannot join is a hang, not a detail to swallow:
    shutdown must raise and point at the stuck frame."""
    from repro.serving.batcher import _SingleWorker

    worker = _SingleWorker()
    release = threading.Event()
    started = threading.Event()

    def wedge():
        started.set()
        release.wait()

    future = worker.submit(wedge)
    assert started.wait(timeout=5.0)
    with pytest.raises(RuntimeError, match="failed to join") as excinfo:
        worker.shutdown(join_timeout_s=0.1)
    # the error carries the worker's stack, naming the stuck function
    assert "wedge" in str(excinfo.value)
    release.set()
    future.result(timeout=5.0)
    worker.shutdown(join_timeout_s=5.0)

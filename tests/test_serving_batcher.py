"""Unit tests for the micro-batch scheduler (no agents involved)."""

from __future__ import annotations

import asyncio

import pytest

from repro.serving import (
    BatchScheduler,
    QueueFullError,
    SchedulerStoppedError,
    ServingConfig,
    Telemetry,
)


def run(coro):
    return asyncio.run(coro)


def echo_processor(batch):
    """Return each request's payload, tagged with its batch size."""
    return [(request.payload, request.batch_size) for request in batch]


async def start_scheduler(config, process=echo_processor, telemetry=None):
    scheduler = BatchScheduler(process, config, telemetry=telemetry)
    await scheduler.start()
    return scheduler


def test_flush_on_max_batch_size():
    async def scenario():
        telemetry = Telemetry()
        scheduler = await start_scheduler(
            ServingConfig(max_batch_size=4, max_wait_ms=10_000.0),
            telemetry=telemetry)
        futures = [scheduler.submit("t", i) for i in range(4)]
        results = await asyncio.gather(*futures)
        await scheduler.stop()
        return results, telemetry.snapshot()

    results, metrics = run(scenario())
    # a full batch flushed long before the (huge) deadline
    assert [payload for payload, _ in results] == [0, 1, 2, 3]
    assert all(size == 4 for _, size in results)
    assert metrics["batch_size_histogram"] == {"4": 1}


def test_flush_on_deadline_with_partial_batch():
    async def scenario():
        scheduler = await start_scheduler(
            ServingConfig(max_batch_size=64, max_wait_ms=5.0))
        futures = [scheduler.submit("t", i) for i in range(3)]
        results = await asyncio.wait_for(asyncio.gather(*futures), timeout=5.0)
        await scheduler.stop()
        return results

    results = run(scenario())
    assert all(size == 3 for _, size in results)


def test_round_robin_fairness_across_tenants():
    async def scenario():
        scheduler = await start_scheduler(
            ServingConfig(max_batch_size=6, max_wait_ms=50.0))
        # tenant "a" floods, tenant "b" sends one request
        futures = [scheduler.submit("a", f"a{i}") for i in range(5)]
        futures.append(scheduler.submit("b", "b0"))
        results = await asyncio.gather(*futures)
        await scheduler.stop()
        return results

    results = run(scenario())
    payloads = [payload for payload, _ in results[:-1]]
    b_result = results[-1]
    # b's single request rode the same (first) batch despite a's flood
    assert b_result == ("b0", 6)
    assert payloads == [f"a{i}" for i in range(5)]


def test_fairness_caps_flooding_tenant_in_cut_order():
    """With a full queue from one tenant plus one from another, the batch
    interleaves tenants instead of draining the flooder first."""
    captured = []

    def capture(batch):
        captured.append([request.payload for request in batch])
        return [None] * len(batch)

    async def scenario():
        scheduler = await start_scheduler(
            ServingConfig(max_batch_size=4, max_wait_ms=50.0), process=capture)
        futures = [scheduler.submit("a", f"a{i}") for i in range(4)]
        futures.append(scheduler.submit("b", "b0"))
        await asyncio.gather(*futures)
        await scheduler.stop()

    run(scenario())
    first_batch = captured[0]
    # round-robin: b0 lands inside the first batch of 4, not behind all of a
    assert "b0" in first_batch


def test_admission_control_queue_full():
    async def scenario():
        telemetry = Telemetry()
        # processor that blocks until released, so the queue backs up
        release = asyncio.Event()
        loop = asyncio.get_running_loop()

        def slow(batch):
            asyncio.run_coroutine_threadsafe(release.wait(), loop).result()
            return [None] * len(batch)

        scheduler = await start_scheduler(
            ServingConfig(max_batch_size=1, max_wait_ms=0.0, queue_capacity=2),
            process=slow, telemetry=telemetry)
        inflight = [scheduler.submit("t", 0)]
        await asyncio.sleep(0.05)  # let the first batch enter the worker
        inflight += [scheduler.submit("t", 1), scheduler.submit("t", 2)]
        with pytest.raises(QueueFullError):
            scheduler.submit("t", 3)
        release.set()
        await asyncio.gather(*inflight)
        await scheduler.stop()
        return telemetry.snapshot()

    metrics = run(scenario())
    assert metrics["requests_rejected"] == 1
    assert metrics["requests_admitted"] == 3


def test_submit_outside_lifecycle_raises():
    config = ServingConfig()
    scheduler = BatchScheduler(echo_processor, config)
    with pytest.raises(SchedulerStoppedError):
        scheduler.submit("t", 0)

    async def scenario():
        await scheduler.start()
        await scheduler.stop()
        with pytest.raises(SchedulerStoppedError):
            scheduler.submit("t", 0)

    run(scenario())


def test_processor_exception_fails_the_batch():
    def broken(batch):
        raise RuntimeError("kaboom")

    async def scenario():
        scheduler = await start_scheduler(
            ServingConfig(max_batch_size=2, max_wait_ms=1.0), process=broken)
        futures = [scheduler.submit("t", i) for i in range(2)]
        outcomes = await asyncio.gather(*futures, return_exceptions=True)
        await scheduler.stop()
        return outcomes

    outcomes = run(scenario())
    assert all(isinstance(outcome, RuntimeError) for outcome in outcomes)


def test_stop_drains_pending_requests():
    async def scenario():
        scheduler = await start_scheduler(
            ServingConfig(max_batch_size=8, max_wait_ms=10_000.0))
        # fewer than a full batch with a far deadline; stop() must not
        # strand them
        futures = [scheduler.submit("t", i) for i in range(3)]
        stop_task = asyncio.get_running_loop().create_task(scheduler.stop())
        results = await asyncio.gather(*futures)
        await stop_task
        return results

    results = run(scenario())
    assert [payload for payload, _ in results] == [0, 1, 2]


def test_config_validation():
    with pytest.raises(ValueError):
        ServingConfig(max_batch_size=0)
    with pytest.raises(ValueError):
        ServingConfig(max_wait_ms=-1.0)
    with pytest.raises(ValueError):
        ServingConfig(queue_capacity=0)

"""The degradation controller: down the CarbonCall ladder and back up."""

from __future__ import annotations

import asyncio

import pytest

from repro.serving import (
    DegradationController,
    DegradationPolicy,
    Gateway,
    ServingConfig,
    SessionManager,
    TenantShedError,
)
from repro.suites import load_suite


def test_policy_validation():
    with pytest.raises(ValueError):
        DegradationPolicy(queue_high=0)
    with pytest.raises(ValueError):
        DegradationPolicy(queue_high=4, queue_low=4)
    with pytest.raises(ValueError):
        DegradationPolicy(p95_high_ms=0.0)
    with pytest.raises(ValueError):
        DegradationPolicy(recovery_ticks=0)
    with pytest.raises(ValueError):
        DegradationPolicy(interval_ms=0.0)
    assert DegradationPolicy(interval_ms=250.0).interval_s == 0.25


def test_ladder_down_to_shed_and_back_up():
    """Sustained pressure walks full→compressed→minimal→reduced-k→shed;
    sustained calm walks back up — and no future ever hangs on the way."""
    suite = load_suite("edgehome", n_queries=6)
    policy = DegradationPolicy(queue_high=4, queue_low=0, recovery_ticks=2,
                               reduced_k_scheme="lis-k1")

    async def scenario():
        sessions = SessionManager()
        sessions.register("home", suite)
        config = ServingConfig(max_batch_size=4, max_wait_ms=1.0)
        async with Gateway(sessions, config=config,
                           degradation=policy) as gateway:
            controller = gateway.degradation
            assert isinstance(controller, DegradationController)
            assert controller.rung("home") == "full"

            # -- down the ladder, one rung per high-pressure tick
            down = []
            for _ in range(4):
                controller.tick(depth=100)
                down.append(controller.rung("home"))
            assert down == ["compressed", "minimal", "reduced-k", "shed"]
            # the catalog rungs really swapped the served variant
            assert sessions.get("home").suite.catalog.variant == "minimal"

            # shed tenants are rejected at admission, not queued
            with pytest.raises(TenantShedError):
                await gateway.submit("home", suite.queries[0])

            # a further high tick holds at the bottom rung
            controller.tick(depth=100)
            assert controller.rung("home") == "shed"

            # -- recovery: recovery_ticks clear ticks per upward step
            up = []
            for _ in range(8):
                controller.tick(depth=0)
                up.append(controller.rung("home"))
            assert controller.rung("home") == "full"
            assert up == ["shed", "reduced-k", "reduced-k", "minimal",
                          "minimal", "compressed", "compressed", "full"]
            assert sessions.get("home").suite.catalog.variant == "full"

            # fully recovered: requests serve normally again
            response = await gateway.submit("home", suite.queries[0])
            assert response.episode is not None
            return gateway.metrics(), controller.status()

    metrics, status = asyncio.run(scenario())
    assert status == {"home": "full"}
    assert metrics["shed_requests_by_tenant"] == {"home": 1}
    # 4 down + 4 up transitions, each one counted with its direction
    assert metrics["degrade_transitions"] == 8
    detail = metrics["degrade_transitions_detail"]
    assert detail["home:down:shed"] == 1
    assert detail["home:up:full"] == 1


def test_reduced_k_rung_reroutes_default_scheme():
    suite = load_suite("edgehome", n_queries=4)
    policy = DegradationPolicy(queue_high=2, queue_low=0, recovery_ticks=1,
                               reduced_k_scheme="lis-k1")

    async def scenario():
        sessions = SessionManager()
        sessions.register("home", suite)
        async with Gateway(sessions, config=ServingConfig(max_wait_ms=1.0),
                           degradation=policy) as gateway:
            controller = gateway.degradation
            for _ in range(3):
                controller.tick(depth=10)
            assert controller.rung("home") == "reduced-k"
            # default traffic now rides the cheap scheme...
            captured = []
            original = gateway.scheduler.submit

            def spy(tenant, item):
                captured.append(item.scheme)
                return original(tenant, item)

            gateway.scheduler.submit = spy
            await gateway.submit("home", suite.queries[0])
            # ...but an explicit per-request scheme is honored as-is
            await gateway.submit("home", suite.queries[1], scheme="lis-k3")
            return captured

    captured = asyncio.run(scenario())
    assert captured == ["lis-k1", "lis-k3"]


def test_in_between_pressure_holds_ladder_and_resets_recovery():
    suite = load_suite("edgehome", n_queries=4)
    policy = DegradationPolicy(queue_high=8, queue_low=1, recovery_ticks=2)

    async def scenario():
        sessions = SessionManager()
        sessions.register("home", suite)
        async with Gateway(sessions, config=ServingConfig(),
                           degradation=policy) as gateway:
            controller = gateway.degradation
            controller.tick(depth=20)
            assert controller.rung("home") == "compressed"
            # alternating clear / middle ticks never complete a recovery
            for _ in range(6):
                controller.tick(depth=0)
                controller.tick(depth=4)
            assert controller.rung("home") == "compressed"
            # two *consecutive* clear ticks do
            controller.tick(depth=0)
            controller.tick(depth=0)
            assert controller.rung("home") == "full"

    asyncio.run(scenario())


def test_p95_latency_trigger():
    suite = load_suite("edgehome", n_queries=4)
    policy = DegradationPolicy(queue_high=100, queue_low=1, recovery_ticks=1,
                               p95_high_ms=50.0)

    async def scenario():
        sessions = SessionManager()
        sessions.register("home", suite)
        async with Gateway(sessions, config=ServingConfig(),
                           degradation=policy) as gateway:
            controller = gateway.degradation
            # empty queue but terrible tail latency still degrades
            controller.tick(depth=0, p95_ms=500.0)
            assert controller.rung("home") == "compressed"
            # recovery needs the latency back under the bar too
            controller.tick(depth=0, p95_ms=500.0)
            assert controller.rung("home") == "minimal"
            controller.tick(depth=0, p95_ms=1.0)
            assert controller.rung("home") == "compressed"

    asyncio.run(scenario())


def test_background_loop_runs_and_cancels_cleanly():
    """The async controller loop ticks on its own and stops with the
    gateway — a registered-but-idle gateway must come down cleanly."""
    suite = load_suite("edgehome", n_queries=4)
    policy = DegradationPolicy(interval_ms=10.0)

    async def scenario():
        sessions = SessionManager()
        sessions.register("home", suite)
        async with Gateway(sessions, config=ServingConfig(),
                           degradation=policy) as gateway:
            await asyncio.sleep(0.08)  # several control intervals
            assert not gateway._degradation_task.done()
            response = await gateway.submit("home", suite.queries[0])
            assert response.episode is not None
            task = gateway._degradation_task
        assert task.cancelled() or task.done()

    asyncio.run(scenario())


def test_variant_ladder_skipped_for_non_full_catalogs():
    """A tenant already serving a derived variant has no cheaper variants
    to step through; its ladder goes straight to reduced-k."""
    base = load_suite("edgehome", n_queries=4)
    compressed = base.with_catalog(base.catalog.at("compressed"))
    policy = DegradationPolicy(queue_high=2, queue_low=0, recovery_ticks=1)

    async def scenario():
        sessions = SessionManager()
        sessions.register("home", compressed)
        async with Gateway(sessions, config=ServingConfig(),
                           degradation=policy) as gateway:
            controller = gateway.degradation
            controller.tick(depth=10)
            assert controller.rung("home") == "reduced-k"
            controller.tick(depth=10)
            assert controller.rung("home") == "shed"
            # catalog untouched the whole way
            assert sessions.get("home").suite.catalog.variant == "compressed"

    asyncio.run(scenario())

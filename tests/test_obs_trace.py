"""Tracing acceptance: deterministic ids, complete span trees, and
context propagation across the thread and process-pool boundaries.

The contracts under test, in the order ISSUE/ROADMAP state them:

* trace ids are a pure function of ``(tenant, qid, repeat)`` — the same
  workload names the same traces on every run, thread or process backend
  alike, and a sample rate keeps a *reproducible* subset;
* one served request yields one complete span tree (``request`` →
  ``queue`` / ``plan`` / ``execute``) retrievable by trace id from a
  :class:`~repro.obs.sinks.MemorySink`;
* :class:`~repro.obs.trace.TraceContext` survives pickling, worker-slice
  spans come back from pool workers carrying the worker's pid, and an
  inline fallback is distinguishable by span name alone;
* tracing never perturbs results — episodes stay bitwise identical to
  the sequential runner with tracing enabled.
"""

from __future__ import annotations

import asyncio
import os
import pickle

from repro.embedding.cache import CachedEmbedder
from repro.evaluation.runner import ExperimentRunner
from repro.obs import (
    MemorySink,
    TraceContext,
    Tracer,
    read_jsonl_spans,
    worker_slice_span,
)
from repro.serving import (
    FaultPlan,
    Gateway,
    ServingConfig,
    SessionManager,
    run_load,
)
from repro.specs import ObsSpec
from repro.suites import load_suite

MODEL, QUANT = "hermes2-pro-8b", "q4_K_M"
WORKERS = int(os.environ.get("REPRO_PROCESS_WORKERS", "2"))


def _memory_tracer(sample_rate: float = 1.0) -> tuple[Tracer, MemorySink]:
    sink = MemorySink()
    return Tracer(sink, sample_rate=sample_rate), sink


def _serve(suite, config: ServingConfig, tracer: Tracer | None,
           queries=None, faults=None):
    """Submit ``queries`` through one gateway; return the responses."""

    async def scenario():
        sessions = SessionManager()
        sessions.register("home", suite)
        async with Gateway(sessions, config=config, faults=faults,
                           tracer=tracer) as gateway:
            return await asyncio.gather(*(
                gateway.submit("home", query)
                for query in (queries or suite.queries)))

    return asyncio.run(scenario())


# ----------------------------------------------------------------------
# deterministic ids and sampling
# ----------------------------------------------------------------------
def test_trace_ids_are_pure_functions_of_tenant_qid_repeat():
    tracer_a, _ = _memory_tracer()
    tracer_b, _ = _memory_tracer()
    keys = [("home", "q-1"), ("home", "q-2"), ("home", "q-1"),
            ("office", "q-1")]
    ids_a = [tracer_a.begin(tenant, qid).trace_id for tenant, qid in keys]
    ids_b = [tracer_b.begin(tenant, qid).trace_id for tenant, qid in keys]
    assert ids_a == ids_b
    # repeats of the same key and other tenants get distinct ids
    assert len(set(ids_a)) == len(ids_a)


def test_sampling_keeps_a_reproducible_subset():
    qids = [f"q-{i}" for i in range(256)]

    def sampled(tracer: Tracer) -> set[str]:
        return {qid for qid in qids
                if tracer.begin("home", qid) is not None}

    subset_a = sampled(Tracer(MemorySink(), sample_rate=0.25))
    subset_b = sampled(Tracer(MemorySink(), sample_rate=0.25))
    assert subset_a == subset_b
    assert 0 < len(subset_a) < len(qids)
    # widening the rate only adds traces, never drops one (the decision
    # threshold is monotone in the rate, per trace id)
    wider = sampled(Tracer(MemorySink(), sample_rate=0.75))
    assert subset_a <= wider
    assert sampled(Tracer(MemorySink(), sample_rate=0.0)) == set()
    assert sampled(Tracer(MemorySink(), sample_rate=1.0)) == set(qids)


def test_trace_context_pickle_roundtrip():
    ctx = TraceContext(trace_id="deadbeefcafef00d", span_id="0123456789abcdef")
    clone = pickle.loads(pickle.dumps(ctx))
    assert clone == ctx
    child = clone.child("fedcba9876543210")
    assert child.trace_id == ctx.trace_id
    assert child.span_id == "fedcba9876543210"


# ----------------------------------------------------------------------
# one request -> one complete span tree
# ----------------------------------------------------------------------
def test_single_request_produces_complete_span_tree():
    suite = load_suite("edgehome", n_queries=4)
    tracer, sink = _memory_tracer()
    config = ServingConfig(max_batch_size=4, max_wait_ms=2.0)
    [response] = _serve(suite, config, tracer, queries=[suite.queries[0]])
    assert response.episode is not None

    [trace_id] = sink.trace_ids()
    spans = {span.name: span for span in sink.trace(trace_id)}
    assert set(spans) == {"request", "queue", "plan", "execute"}
    root = spans["request"]
    assert root.parent_id == ""
    assert root.attributes["tenant"] == "home"
    assert root.attributes["qid"] == response.episode.qid
    assert {event.name for event in root.events} >= {"admit", "reply"}
    for name in ("queue", "plan", "execute"):
        assert spans[name].parent_id == root.span_id, name
        assert spans[name].status == "ok"
    assert spans["execute"].attributes["backend"] == "inline"
    # the tree renders (demo/debug aid) and names every span
    tree = sink.render_tree(trace_id)
    for name in spans:
        assert name in tree


def test_same_workload_names_the_same_traces_across_runs():
    suite = load_suite("edgehome", n_queries=6)
    config = ServingConfig(max_batch_size=4, max_wait_ms=2.0)
    ids = []
    for _ in range(2):
        tracer, sink = _memory_tracer()
        _serve(suite, config, tracer)
        ids.append(set(sink.trace_ids()))
    assert ids[0] == ids[1]


# ----------------------------------------------------------------------
# the process-pool boundary
# ----------------------------------------------------------------------
def test_worker_slice_spans_cross_the_pickle_boundary():
    suite = load_suite("edgehome", n_queries=6)
    tracer, sink = _memory_tracer()
    config = ServingConfig(max_batch_size=4, max_wait_ms=2.0,
                           execution_backend="process",
                           execution_workers=WORKERS,
                           slice_timeout_s=30.0)
    responses = _serve(suite, config, tracer)
    assert all(response.episode is not None for response in responses)

    slices = [span for span in sink.spans() if span.name == "worker-slice"]
    executes = {span.span_id: span for span in sink.spans()
                if span.name == "execute"}
    qids = {query.qid for query in suite.queries}
    assert len(slices) == len(suite.queries)
    for span in slices:
        # built inside the pool worker, pickled back to the parent
        assert span.attributes["pid"] != os.getpid()
        assert span.attributes["qid"] in qids
        # parents to its request's execute span (id survived pickling)
        assert span.parent_id in executes
        assert executes[span.parent_id].trace_id == span.trace_id
        assert executes[span.parent_id].attributes["backend"] == "worker"
    # every trace id a worker saw is a trace the gateway started
    gateway_ids = {span.trace_id for span in sink.spans()
                   if span.name == "request"}
    assert {span.trace_id for span in slices} <= gateway_ids


def test_inline_fallback_slices_are_distinguishable():
    """With every group crashing a worker and zero retries, episodes run
    through the inline fallback — named ``inline-slice``, parent pid."""
    suite = load_suite("edgehome", n_queries=4)
    tracer, sink = _memory_tracer()
    config = ServingConfig(max_batch_size=2, max_wait_ms=2.0,
                           execution_backend="process",
                           execution_workers=WORKERS,
                           execution_retries=0, retry_backoff_ms=10.0,
                           slice_timeout_s=30.0)
    responses = _serve(suite, config, tracer,
                       faults=FaultPlan(seed=2, worker_crash_rate=1.0))
    assert all(response.episode is not None for response in responses)

    by_name = {}
    for span in sink.spans():
        by_name.setdefault(span.name, []).append(span)
    inline_slices = by_name.get("inline-slice", [])
    assert inline_slices, "crash-everything run produced no inline slices"
    assert not by_name.get("worker-slice"), \
        "worker slices survived a crash-every-group plan with 0 retries"
    for span in inline_slices:
        assert span.attributes["pid"] == os.getpid()
    # the fallback decision itself is an event on the owning trace
    fallback_events = [event
                       for spans in by_name.values() for span in spans
                       for event in span.events
                       if event.name == "inline_fallback"]
    assert fallback_events


def test_worker_slice_span_helper_names_both_sides():
    ctx = TraceContext("feedfacefeedface", "0011223344556677")
    worker = worker_slice_span(ctx, "q-1", 1.0, 2.0)
    inline = worker_slice_span(ctx, "q-1", 1.0, 2.0, inline=True)
    assert worker.name == "worker-slice"
    assert inline.name == "inline-slice"
    assert worker.parent_id == inline.parent_id == ctx.span_id
    assert worker.duration_ms == inline.duration_ms == 1000.0


# ----------------------------------------------------------------------
# tracing is a pure observer
# ----------------------------------------------------------------------
def test_tracing_preserves_bitwise_equivalence():
    suite = load_suite("edgehome", n_queries=8)
    reference = {
        episode.qid: episode
        for episode in ExperimentRunner(suite, embedder=CachedEmbedder())
        .run("lis-k3", MODEL, QUANT).episodes
    }
    tracer, sink = _memory_tracer()
    config = ServingConfig(max_batch_size=4, max_wait_ms=2.0)
    responses = _serve(suite, config, tracer)
    assert len(sink.trace_ids()) == len(suite.queries)
    for response in responses:
        assert response.episode == reference[response.episode.qid]


def test_obs_spec_wires_a_jsonl_artifact(tmp_path):
    """``ServingConfig.obs`` alone (no explicit tracer) builds the tracer
    and the JSONL sink writes one span per line, readable back."""
    path = tmp_path / "trace.jsonl"
    suite = load_suite("edgehome", n_queries=4)
    config = ServingConfig(
        max_batch_size=4, max_wait_ms=2.0,
        obs=ObsSpec(sink="jsonl", sink_path=str(path)))
    report = run_load({"home": suite}, config, n_requests=4, concurrency=4)
    assert report.n_errors == 0
    spans = read_jsonl_spans(str(path))
    assert {span["name"] for span in spans} == {
        "request", "queue", "plan", "execute"}
    roots = [span for span in spans if span["name"] == "request"]
    assert len(roots) == 4
    for span in spans:
        assert span["end_s"] >= span["start_s"]


def test_memory_sink_ring_evicts_oldest():
    tracer = Tracer(sink := MemorySink(capacity=3))
    for i in range(5):
        ctx = TraceContext(trace_id=f"{i:016x}")
        tracer.end_span(tracer.start_span(ctx, "request"))
    assert len(sink) == 3
    assert sink.trace_ids() == [f"{i:016x}" for i in (2, 3, 4)]

"""Unit tests for the perf gate itself.

``scripts/check_perf_regression.py`` guards every PR's throughput and
``scripts/bench_perf.py`` produces the JSON it reads — so a bug in
either silently disables the whole perf-tracking story.  These tests
exercise the comparison logic (pass, >25% regression, missing/new
metrics) and the bench harness's JSON-shape plumbing with stubbed-out
measurements (the real measurements live in ``make bench``).
"""

from __future__ import annotations

import importlib
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

check = importlib.import_module("check_perf_regression")
bench = importlib.import_module("bench_perf")


def _report(**overrides) -> dict:
    """A minimal BENCH_perf.json-shaped report with healthy numbers."""
    report = {
        "encode": {"batched_texts_per_s": 20_000.0, "speedup": 5.0},
        "search": {"flat_batched_ms": 0.5, "ivf_batched_ms": 2.0,
                   "pq_batched_ms": 1.3},
        "episode": {"episodes_per_s": 1_000.0,
                    "browser_episodes_per_s": 700.0},
        "catalog": {"build_ms": 2.0, "compressed_token_ratio": 0.92,
                    "minimal_token_ratio": 0.87},
        "grid": {"sequential_s": 0.2, "parallel_s": 0.18, "process_s": 0.5},
        "serving": {"batched_req_per_s": 2_000.0,
                    "speedup_vs_sequential": 2.2,
                    "chaos": {"success_rate": 1.0},
                    "obs": {"req_per_s_sample_1": 1_800.0},
                    "http": {"req_per_s": 800.0},
                    "engine_overhead": {"engined_episodes_per_s": 990.0}},
    }
    for dotted, value in overrides.items():
        *path, metric = dotted.split(".")
        node = report
        for part in path:
            node = node[part]
        node[metric] = value
    return report


# ----------------------------------------------------------------------
# compare(): the decision core
# ----------------------------------------------------------------------
def test_identical_reports_pass():
    assert check.compare(_report(), _report(), tolerance=0.25) == []


def test_jitter_within_tolerance_passes():
    fresh = _report(**{"encode.batched_texts_per_s": 16_000.0,  # -20%
                       "search.flat_batched_ms": 0.6})           # +20%
    assert check.compare(_report(), fresh, tolerance=0.25) == []


def test_throughput_drop_beyond_tolerance_fails():
    fresh = _report(**{"encode.batched_texts_per_s": 14_000.0})  # -30%
    rows = check.compare(_report(), fresh, tolerance=0.25)
    assert [row[0] for row in rows] == ["encode.batched_texts_per_s"]
    name, base_value, fresh_value, ratio = rows[0]
    assert (base_value, fresh_value) == (20_000.0, 14_000.0)
    assert ratio == pytest.approx(0.7)


def test_latency_growth_beyond_tolerance_fails():
    fresh = _report(**{"grid.process_s": 0.7})  # +40% on a lower-is-better
    rows = check.compare(_report(), fresh, tolerance=0.25)
    assert [row[0] for row in rows] == ["grid.process_s"]


def test_latency_improvement_passes():
    fresh = _report(**{"grid.sequential_s": 0.05, "grid.process_s": 0.1})
    assert check.compare(_report(), fresh, tolerance=0.25) == []


def test_metric_missing_from_fresh_is_skipped_not_crashed():
    fresh = _report()
    del fresh["serving"]["batched_req_per_s"]
    del fresh["grid"]
    assert check.compare(_report(), fresh, tolerance=0.25) == []


def test_metric_missing_from_baseline_is_skipped():
    """A brand-new metric (fresh only) must not fail against old baselines."""
    baseline = _report()
    del baseline["grid"]["process_s"]
    fresh = _report(**{"grid.process_s": 123.0})
    assert check.compare(baseline, fresh, tolerance=0.25) == []


def test_zero_or_negative_baseline_is_skipped():
    baseline = _report(**{"episode.episodes_per_s": 0.0})
    fresh = _report(**{"episode.episodes_per_s": 1.0})
    assert check.compare(baseline, fresh, tolerance=0.25) == []


def test_tracked_metrics_all_present_in_committed_baseline():
    """The committed baseline must actually carry every guarded metric."""
    baseline = json.loads((REPO_ROOT / "BENCH_perf.json").read_text())
    for section, metric, _ in check.TRACKED_METRICS:
        assert check.lookup(baseline, section, metric) is not None, \
            f"{section}.{metric} missing from BENCH_perf.json"


def test_lookup_traverses_dotted_sections():
    report = _report()
    assert check.lookup(report, "serving.chaos", "success_rate") == 1.0
    assert check.lookup(report, "serving", "batched_req_per_s") == 2_000.0
    assert check.lookup(report, "serving.nope", "x") is None
    # a scalar in the middle of the path is not a section
    assert check.lookup(report, "serving.batched_req_per_s", "x") is None


def test_chaos_success_rate_drop_fails():
    fresh = _report(**{"serving.chaos.success_rate": 0.6})
    rows = check.compare(_report(), fresh, tolerance=0.25)
    assert [row[0] for row in rows] == ["serving.chaos.success_rate"]


# ----------------------------------------------------------------------
# main(): exit codes and file plumbing
# ----------------------------------------------------------------------
def _write(tmp_path, name, report) -> str:
    path = tmp_path / name
    path.write_text(json.dumps(report))
    return str(path)


def test_main_exit_zero_on_pass(tmp_path, capsys):
    baseline = _write(tmp_path, "base.json", _report())
    fresh = _write(tmp_path, "fresh.json", _report())
    assert check.main(["--baseline", baseline, "--fresh", fresh]) == 0
    assert "OK" in capsys.readouterr().out


def test_main_exit_nonzero_on_regression(tmp_path, capsys):
    baseline = _write(tmp_path, "base.json", _report())
    fresh = _write(tmp_path, "fresh.json",
                   _report(**{"serving.batched_req_per_s": 100.0}))
    assert check.main(["--baseline", baseline, "--fresh", fresh]) == 1
    assert "REGRESSION serving.batched_req_per_s" in capsys.readouterr().out


def test_main_honors_tolerance(tmp_path):
    baseline = _write(tmp_path, "base.json", _report())
    fresh = _write(tmp_path, "fresh.json",
                   _report(**{"encode.speedup": 3.0}))  # -40%
    args = ["--baseline", baseline, "--fresh", fresh]
    assert check.main(args) == 1
    assert check.main(args + ["--tolerance", "0.5"]) == 0


# ----------------------------------------------------------------------
# bench_perf.py: JSON-shape plumbing (measurements stubbed)
# ----------------------------------------------------------------------
def test_bench_main_writes_guarded_shape(tmp_path, monkeypatch, capsys):
    """main() must emit a report carrying every guarded metric.

    The section measurements are stubbed so this is a fast, pure test of
    the collect/emit plumbing — shape drift between the harness and the
    gate (a renamed key, a dropped section) fails here instead of
    silently un-guarding a metric in CI.
    """
    stub = _report()
    stub["search"].update({"n_queries": 64, "flat_batch_speedup": 15.0})
    monkeypatch.setattr(bench, "bench_encode", lambda repeats: stub["encode"])
    monkeypatch.setattr(bench, "bench_search", lambda repeats: stub["search"])
    monkeypatch.setattr(bench, "bench_episodes", lambda repeats: stub["episode"])
    monkeypatch.setattr(bench, "bench_grid", lambda n_queries: {
        **stub["grid"],
        "cells": 6, "n_queries": n_queries, "parallel_speedup": 1.1,
        "process_workers": 2, "process_speedup": 0.4,
    })
    monkeypatch.setattr(bench, "bench_serving", lambda: {
        **{key: value for key, value in stub["serving"].items()
           if key != "chaos"},
        "batched_p95_ms": 20.0,
    })
    monkeypatch.setattr(bench, "bench_serving_chaos", lambda: {
        **stub["serving"]["chaos"],
        "faults_injected": 3, "worker_restarts": 3, "slice_retries": 4,
        "inline_fallbacks": 0, "req_per_s": 150.0, "goodput_rps": 150.0,
    })
    monkeypatch.setattr(bench, "bench_serving_http", lambda: {
        **stub["serving"]["http"],
        "p95_ms": 12.0, "mean_batch_size": 4.5,
    })
    monkeypatch.setattr(bench, "bench_engine_overhead", lambda repeats: {
        **stub["serving"]["engine_overhead"],
        "direct_episodes_per_s": 1_000.0, "overhead_frac": 0.01,
    })
    monkeypatch.setattr(bench, "bench_obs", lambda: {
        **stub["serving"]["obs"],
        "req_per_s_untraced": 2_000.0, "req_per_s_sample_0": 1_990.0,
        "req_per_s_sample_0_1": 1_950.0, "overhead_frac_sample_1": 0.1,
        "cost": {"total": {"requests": 512}, "by_tenant": {}},
    })

    output = tmp_path / "report.json"
    assert bench.main(["--output", str(output), "--repeats", "1"]) == 0
    report = json.loads(output.read_text())

    assert report["schema_version"] == 2
    assert report["machine"]["cpu_count"] is not None
    for section, metric, _ in check.TRACKED_METRICS:
        assert check.lookup(report, section, metric) is not None, \
            f"bench_perf.main() dropped guarded metric {section}.{metric}"
    # a fresh self-comparison through the real gate must pass
    assert check.compare(report, report, tolerance=0.25) == []
    assert "wrote" in capsys.readouterr().out

"""Tests for repro.evaluation: metrics, runner, reporting."""

import pytest

from repro.core.episode import EpisodeResult, StepRecord
from repro.evaluation.metrics import normalize, summarize
from repro.evaluation.reporting import figure_series, render_metric_table, render_series
from repro.evaluation.runner import ExperimentRunner
from repro.suites.bfcl import build_bfcl_suite


def episode(success=True, correct=True, time_s=10.0, energy_j=200.0, level=1):
    result = EpisodeResult(qid="q", scheme="lis", model="m", quant="q",
                           selected_level=level, time_s=time_s,
                           energy_j=energy_j, avg_power_w=energy_j / time_s)
    result.steps.append(StepRecord(0, "tool", correct, success and correct, 5))
    return result


class TestSummarize:
    def test_rates(self):
        summary = summarize([episode(True), episode(False), episode(False, correct=False)])
        assert summary.success_rate == pytest.approx(1 / 3)
        assert summary.tool_accuracy == pytest.approx(2 / 3)
        assert summary.n_episodes == 3

    def test_power_is_energy_weighted(self):
        fast = episode(time_s=1.0, energy_j=30.0)   # 30 W
        slow = episode(time_s=9.0, energy_j=90.0)   # 10 W
        summary = summarize([fast, slow])
        assert summary.avg_power_w == pytest.approx(120.0 / 10.0)

    def test_level_histogram(self):
        summary = summarize([episode(level=1), episode(level=1), episode(level=3)])
        assert summary.level_histogram == {1: 2, 3: 1}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestNormalize:
    def test_ratio(self):
        base = summarize([episode(time_s=10.0, energy_j=300.0)])
        cand = summarize([episode(time_s=5.0, energy_j=100.0)])
        norm = normalize(cand, base)
        assert norm.normalized_time == pytest.approx(0.5)
        assert norm.normalized_power == pytest.approx((100 / 5) / (300 / 10))

    def test_zero_baseline_rejected(self):
        base = summarize([episode(time_s=10.0, energy_j=300.0)])
        broken = summarize([episode(time_s=10.0, energy_j=300.0)])
        object.__setattr__(broken, "mean_time_s", 0.0)
        with pytest.raises(ValueError):
            normalize(base, broken)


class TestExperimentRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner(build_bfcl_suite(n_queries=12, n_train=40))

    def test_run_batch(self, runner):
        run = runner.run("default", "qwen2-7b", "q4_K_M")
        assert len(run.episodes) == 12
        assert run.key == ("default", "qwen2-7b", "q4_K_M")

    def test_n_queries_limits(self, runner):
        run = runner.run("default", "qwen2-7b", "q4_K_M", n_queries=5)
        assert len(run.episodes) == 5

    def test_lis_scheme_k_parsing(self, runner):
        agent = runner.make_agent("lis-k5", "qwen2-7b", "q4_K_M")
        assert agent.k == 5
        assert runner.make_agent("lis", "qwen2-7b", "q4_K_M").k == 3

    def test_levels_cached(self, runner):
        assert runner.levels is runner.levels

    def test_unknown_scheme(self, runner):
        with pytest.raises(ValueError):
            runner.make_agent("react", "qwen2-7b", "q4_K_M")

    def test_run_grid_keys(self, runner):
        grid = runner.run_grid(["default", "lis-k3"], ["qwen2-7b"], ["q4_0"], n_queries=4)
        assert set(grid) == {("default", "qwen2-7b", "q4_0"), ("lis-k3", "qwen2-7b", "q4_0")}


class TestReporting:
    def test_render_metric_table(self):
        summary = summarize([episode()])
        text = render_metric_table({"conf-a": summary}, title="Table X")
        assert "Table X" in text
        assert "conf-a" in text
        assert "100.0%" in text

    def test_render_series(self):
        base = summarize([episode(time_s=10.0, energy_j=300.0)])
        cand = summarize([episode(time_s=5.0, energy_j=100.0)])
        text = render_series({"row": normalize(cand, base)})
        assert "row" in text
        assert "0.500" in text

    def test_figure_series_normalizes_per_quant(self):
        runner = ExperimentRunner(build_bfcl_suite(n_queries=6, n_train=40))
        grid = runner.run_grid(["default", "lis-k3"], ["qwen2-7b"], ["q4_K_M"])
        rows = figure_series(grid, "qwen2-7b", ["q4_K_M"], ["default", "lis-k3"])
        assert rows["qwen2-7b-q4_K_M default"].normalized_time == pytest.approx(1.0)
        assert "qwen2-7b-q4_K_M lis-k3" in rows

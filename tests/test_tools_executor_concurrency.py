"""Thread-safety of the shared SimulatedToolExecutor."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.suites import load_suite
from repro.tools import SimulatedToolExecutor
from repro.tools.schema import ToolCall


def _calls(suite, n):
    calls = []
    for i in range(n):
        query = suite.queries[i % len(suite.queries)]
        calls.append(query.gold_calls[0])
    return calls


def test_concurrent_executions_do_not_lose_log_entries():
    suite = load_suite("edgehome", n_queries=16)
    executor = SimulatedToolExecutor(suite.registry)
    calls = _calls(suite, 400)

    with ThreadPoolExecutor(max_workers=8) as pool:
        outcomes = list(pool.map(executor.execute, calls))

    # every call produced an outcome and every outcome was logged:
    # pre-fix, concurrent list.append could drop entries
    assert len(outcomes) == 400
    assert len(executor.executed) == 400
    assert all(outcome.ok for outcome in outcomes)


def test_log_opt_out_keeps_executor_stateless():
    suite = load_suite("edgehome", n_queries=8)
    executor = SimulatedToolExecutor(suite.registry, log_calls=False)
    calls = _calls(suite, 64)

    with ThreadPoolExecutor(max_workers=4) as pool:
        outcomes = list(pool.map(executor.execute, calls))

    assert all(outcome.ok for outcome in outcomes)
    assert executor.executed == []  # nothing accumulated


def test_outcomes_deterministic_under_concurrency():
    """The same call yields the same outcome no matter the interleaving."""
    suite = load_suite("edgehome", n_queries=8)
    sequential_executor = SimulatedToolExecutor(suite.registry)
    call = suite.queries[0].gold_calls[0]
    reference = sequential_executor.execute(call)

    concurrent_executor = SimulatedToolExecutor(suite.registry, log_calls=False)
    with ThreadPoolExecutor(max_workers=8) as pool:
        outcomes = list(pool.map(concurrent_executor.execute, [call] * 64))
    for outcome in outcomes:
        assert outcome.value == reference.value
        assert outcome.api_latency_s == reference.api_latency_s


def test_failed_calls_are_logged_and_reset_clears():
    suite = load_suite("edgehome", n_queries=4)
    executor = SimulatedToolExecutor(suite.registry)
    bad = ToolCall("not_a_real_tool", {})
    outcome = executor.execute(bad)
    assert not outcome.ok
    assert len(executor.executed) == 1
    executor.reset()
    assert executor.executed == []

"""The browser suite: multi-turn queries, stateful executor, every path.

The suite's point is tool-state carryover — later turns of an episode
only succeed because an earlier turn opened a page — so beyond the
usual suite hygiene (catalog shape, determinism, gold validation) these
tests pin the state machine itself, then drive the suite through each
execution path: a sequential Session run, the process-backend grid, and
the serving gateway, asserting bitwise equality and per-turn records
throughout.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.embedding.cache import CachedEmbedder
from repro.evaluation.runner import ExperimentRunner
from repro.registry import CATALOGS
from repro.serving import Gateway, ServingConfig, SessionManager
from repro.session import open_session
from repro.suites import load_suite
from repro.suites.browser import (
    BrowserToolExecutor,
    build_browser_executor,
    build_browser_suite,
)
from repro.tools.catalog import load_catalog
from repro.tools.schema import ToolCall

MODEL, QUANT = "hermes2-pro-8b", "q4_K_M"


@pytest.fixture(scope="module")
def suite():
    return build_browser_suite(n_queries=24)


# ----------------------------------------------------------------------
# catalog
# ----------------------------------------------------------------------
class TestCatalog:
    def test_registered_and_loadable(self):
        assert "browser" in CATALOGS
        catalog = load_catalog("browser")
        assert catalog.name == "browser"
        assert len(catalog) == 14

    def test_three_domains(self):
        catalog = load_catalog("browser")
        assert set(catalog.categories) == {"navigation", "input", "reading"}

    def test_variants_shrink_token_cost(self):
        from repro.llm.tokens import tool_prompt_tokens

        catalog = load_catalog("browser")
        tokens = {variant: sum(tool_prompt_tokens(tool)
                               for tool in catalog.at(variant))
                  for variant in ("full", "compressed", "minimal")}
        assert tokens["minimal"] < tokens["compressed"] < tokens["full"]

    def test_no_collision_with_other_catalogs(self):
        browser = set(load_catalog("browser").names)
        for other in ("edgehome", "bfcl", "geoengine"):
            assert not browser & set(load_catalog(other).names)


# ----------------------------------------------------------------------
# multi-turn queries
# ----------------------------------------------------------------------
class TestQueries:
    def test_loadable_by_name(self):
        assert load_suite("browser", n_queries=4).name == "browser"

    def test_every_query_is_multi_turn(self, suite):
        assert all(query.n_turns >= 2 for query in suite.queries)
        assert all(query.sequential for query in suite.queries)

    def test_turns_partition_gold_calls(self, suite):
        for query in suite.queries:
            flattened = tuple(call for turn in query.turns
                              for call in turn.gold_calls)
            assert flattened == query.gold_calls

    def test_turn_of_step_walks_the_partition(self, suite):
        query = next(q for q in suite.queries if q.n_turns == 3)
        turn_sizes = [len(turn.gold_calls) for turn in query.turns]
        expected = [turn_index
                    for turn_index, size in enumerate(turn_sizes)
                    for _ in range(size)]
        got = [query.turn_of_step(i) for i in range(query.n_steps)]
        assert got == expected
        # past-the-end steps (fallback retries) stick to the last turn
        assert query.turn_of_step(query.n_steps + 3) == query.n_turns - 1

    def test_first_turn_always_opens_a_page(self, suite):
        # the state contract depends on it: turn one must open the page
        # that later turns operate on
        for query in suite.queries:
            assert query.turns[0].gold_calls[0].tool == "open_page"

    def test_gold_arguments_validate(self, suite):
        for query in suite.queries:
            for call in query.gold_calls:
                spec = suite.registry.get(call.tool)
                assert spec.validate_arguments(call.arguments) == [], query.qid

    def test_deterministic(self):
        a = build_browser_suite(n_queries=12)
        b = build_browser_suite(n_queries=12)
        assert [q.text for q in a.queries] == [q.text for q in b.queries]
        assert [q.gold_calls for q in a.queries] == \
            [q.gold_calls for q in b.queries]


# ----------------------------------------------------------------------
# the stateful executor
# ----------------------------------------------------------------------
class TestBrowserExecutor:
    @pytest.fixture()
    def executor(self, suite):
        return build_browser_executor(suite.registry)

    def test_suite_wires_the_factory(self, suite):
        assert suite.executor_factory is build_browser_executor
        assert isinstance(build_browser_executor(suite.registry),
                          BrowserToolExecutor)

    def test_page_required_before_dependent_tools(self, executor):
        state = executor.new_episode_state()
        outcome = executor.execute(ToolCall("read_title", {}), state=state)
        assert not outcome.ok
        assert "needs an open page" in outcome.error

    def test_state_carries_across_calls(self, executor):
        state = executor.new_episode_state()
        opened = executor.execute(
            ToolCall("open_page", {"url": "https://wiki.example.org"}),
            state=state)
        assert opened.ok
        read = executor.execute(ToolCall("read_title", {}), state=state)
        assert read.ok
        assert read.value["page"] == "https://wiki.example.org"
        assert "wiki.example.org" in read.value["title"]
        assert read.value["session_actions"] == 2

    def test_go_back_pops_history(self, executor):
        state = executor.new_episode_state()
        for url in ("https://a.example", "https://b.example"):
            executor.execute(ToolCall("open_page", {"url": url}), state=state)
        back = executor.execute(ToolCall("go_back", {}), state=state)
        assert back.ok and back.value["page"] == "https://a.example"

    def test_episodes_are_isolated(self, executor):
        first = executor.new_episode_state()
        second = executor.new_episode_state()
        executor.execute(ToolCall("open_page", {"url": "https://a.example"}),
                         state=first)
        # the second episode never opened anything — it must not see
        # the first episode's page
        outcome = executor.execute(ToolCall("list_links", {}), state=second)
        assert not outcome.ok

    def test_none_state_degrades_to_stateless(self, executor):
        # callers that never create a state (the base agent on ordinary
        # suites) keep the old behaviour: no gating, no page bookkeeping
        outcome = executor.execute(ToolCall("read_title", {}))
        assert outcome.ok
        assert "page" not in outcome.value

    def test_schema_validation_still_first(self, executor):
        state = executor.new_episode_state()
        outcome = executor.execute(
            ToolCall("open_page", {}), state=state)  # missing required url
        assert not outcome.ok
        assert state["page"] is None  # rejected calls never mutate state


# ----------------------------------------------------------------------
# end to end: sequential, grid (process), served
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_session_run_carries_state_across_turns(self):
        session = open_session("browser", n_queries=12)
        run = session.run("lis-k3")
        by_qid = {query.qid: query for query in session.suite.queries}

        later_turn_steps = [step for episode in run.episodes
                            for step in episode.steps if step.turn_index > 0]
        assert later_turn_steps, "no step was recorded on a later turn"
        for episode in run.episodes:
            query = by_qid[episode.qid]
            for step_index, step in enumerate(episode.steps):
                assert step.turn_index == query.turn_of_step(step_index)
        # the carryover claim: every browser tool except open_page fails
        # unless an *earlier step of the same episode* opened a page, so
        # later-turn steps succeeding at all proves the state carried
        # (simulated argument errors keep the fraction below 1.0)
        ok_fraction = sum(step.execution_ok for step in later_turn_steps) \
            / len(later_turn_steps)
        assert ok_fraction > 0.5, f"carryover broken: {ok_fraction:.0%} ok"
        # the suite is solvable end to end, not trivially failing
        assert run.summary.success_rate > 0.5

    def test_process_grid_bitwise_equals_sequential(self):
        suite = load_suite("browser", n_queries=6)
        schemes, models, quants = ["default", "lis-k3"], [MODEL], [QUANT]
        sequential = ExperimentRunner(
            suite, embedder=CachedEmbedder()).run_grid(
            schemes, models, quants, backend="sequential")
        process = ExperimentRunner(
            suite, embedder=CachedEmbedder()).run_grid(
            schemes, models, quants, backend="process", max_workers=2)
        assert list(process) == list(sequential)
        for cell, run in sequential.items():
            # EpisodeResult equality covers turn_index on every step —
            # the stateful executor pickles to workers and behaves
            # identically there
            assert process[cell].episodes == run.episodes, cell

    def test_served_episodes_equal_sequential_and_keep_turns(self):
        suite = load_suite("browser", n_queries=12)
        reference_runner = ExperimentRunner(suite, embedder=CachedEmbedder())
        reference = {
            episode.qid: episode
            for episode in reference_runner.run("lis-k3", MODEL, QUANT).episodes
        }

        async def serve_all():
            sessions = SessionManager()
            sessions.register("t", suite)
            config = ServingConfig(max_batch_size=8, max_wait_ms=5.0)
            async with Gateway(sessions, config=config) as gateway:
                return await asyncio.gather(*(
                    gateway.submit("t", query) for query in suite.queries))

        responses = asyncio.run(serve_all())
        assert len(responses) == len(reference)
        for response in responses:
            assert response.episode == reference[response.episode.qid]
        served_later_steps = [step for response in responses
                              for step in response.episode.steps
                              if step.turn_index > 0]
        assert served_later_steps, "served episodes lost their turn records"

"""Batched-vs-per-query search equivalence across all index types."""

import numpy as np
import pytest

from repro.utils.rng import derive_rng
from repro.vectorstore import FlatIndex, IVFIndex, PQIndex


@pytest.fixture(scope="module")
def vectors():
    return derive_rng("test-batched-store").standard_normal((60, 16))


@pytest.fixture(scope="module")
def queries():
    return derive_rng("test-batched-queries").standard_normal((17, 16))


def build_flat_cosine(vectors):
    index = FlatIndex(dim=16, metric="cosine")
    index.add(vectors)
    return index


def build_flat_l2(vectors):
    index = FlatIndex(dim=16, metric="l2")
    index.add(vectors)
    return index


def build_ivf(vectors):
    index = IVFIndex(dim=16, metric="cosine", n_lists=5, nprobe=2)
    index.add(vectors)
    index.train()
    return index


def build_pq(vectors):
    index = PQIndex(dim=16, m=4, n_centroids=16)
    index.add(vectors)
    index.train()
    return index


BUILDERS = [build_flat_cosine, build_flat_l2, build_ivf, build_pq]


@pytest.mark.parametrize("builder", BUILDERS)
@pytest.mark.parametrize("k", [1, 3, 60, 100])
def test_batched_equals_per_query(builder, k, vectors, queries):
    index = builder(vectors)
    batched = index.search(queries, k)
    for qi, query in enumerate(queries):
        single = index.search_one(query, k)
        np.testing.assert_array_equal(batched[qi].ids, single.ids)
        # scoring kernels run in fixed-shape padded blocks, so scores are
        # bitwise identical no matter the batch composition (the serving
        # micro-batcher's determinism contract)
        np.testing.assert_array_equal(batched[qi].scores, single.scores)


@pytest.mark.parametrize("builder", BUILDERS)
def test_batched_scores_sorted_best_first(builder, vectors, queries):
    index = builder(vectors)
    for result in index.search(queries, 7):
        ordered = sorted(result.scores, reverse=index.metric.higher_is_better)
        assert list(result.scores) == ordered


def test_flat_batched_matches_bruteforce(vectors, queries):
    index = build_flat_cosine(vectors)
    results = index.search(queries, 5)
    scores = index.metric.score(queries, vectors)
    for qi, result in enumerate(results):
        expected_rows = np.argsort(-scores[qi], kind="stable")[:5]
        np.testing.assert_array_equal(result.ids, expected_rows)
        np.testing.assert_allclose(result.scores, scores[qi][expected_rows])


def test_ivf_batched_matches_per_query_reference(vectors, queries):
    """The grouped IVF probe must reproduce the naive per-query algorithm."""
    index = build_ivf(vectors)
    results = index.search(queries, 4)
    centroids = index._centroids
    assignments = index._assignments
    centroid_dists = ((queries[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    for qi, result in enumerate(results):
        probe = np.argsort(centroid_dists[qi], kind="stable")[: index.nprobe]
        candidate_rows = np.flatnonzero(np.isin(assignments, probe))
        scores = index.metric.score(queries[qi:qi + 1], vectors[candidate_rows])[0]
        order = np.argsort(-scores, kind="stable")[:4]
        np.testing.assert_allclose(np.sort(result.scores)[::-1],
                                   np.sort(scores[order])[::-1])
        assert set(result.ids.tolist()) <= set(candidate_rows.tolist())


def test_search_arrays_shapes(vectors, queries):
    index = build_flat_cosine(vectors)
    scores, ids = index.search_arrays(queries, 6)
    assert scores.shape == (17, 6)
    assert ids.shape == (17, 6)
    results = index.search(queries, 6)
    np.testing.assert_array_equal(scores, np.stack([r.scores for r in results]))
    np.testing.assert_array_equal(ids, np.stack([r.ids for r in results]))


def test_search_arrays_clamps_k(vectors):
    index = build_flat_cosine(vectors)
    scores, ids = index.search_arrays(np.ones((2, 16)), 999)
    assert scores.shape == (2, 60)


def test_pq_add_after_train_refreshes_batched_state(vectors):
    index = build_pq(vectors)
    extra = np.full((1, 16), 50.0)
    index.add(extra, ids=[999])
    result = index.search_one(extra[0], k=1)
    assert result.top()[1] == 999


def test_rows_hoisted_and_maintained(vectors):
    index = build_flat_cosine(vectors)
    np.testing.assert_array_equal(index._rows, np.arange(60))
    index.add(np.ones((2, 16)))
    np.testing.assert_array_equal(index._rows, np.arange(62))


def test_scores_invariant_across_batch_compositions(vectors, queries):
    """A query's scores are bitwise stable however it shares a batch.

    This is what lets the serving gateway stack many requests'
    recommendation vectors into one search without the batch composition
    (which depends on request timing) leaking into any request's result.
    """
    index = build_flat_cosine(vectors)
    reference, reference_ids = index.search_arrays(queries, 5)
    # larger stacked batch (crosses the padded-block boundary)
    stacked = np.vstack([queries, queries, queries])
    stacked_scores, stacked_ids = index.search_arrays(stacked, 5)
    for copy in range(3):
        block = slice(copy * len(queries), (copy + 1) * len(queries))
        np.testing.assert_array_equal(stacked_scores[block], reference)
        np.testing.assert_array_equal(stacked_ids[block], reference_ids)
    # odd-sized sub-batches and single rows
    for start in range(0, len(queries), 3):
        scores, ids = index.search_arrays(queries[start:start + 3], 5)
        np.testing.assert_array_equal(scores, reference[start:start + 3])
        np.testing.assert_array_equal(ids, reference_ids[start:start + 3])


def test_batch_invariant_matmul_handles_empty_and_blocked_shapes():
    from repro.vectorstore.metrics import QUERY_BLOCK, batch_invariant_matmul

    rng = np.random.default_rng(3)
    stored = rng.standard_normal((9, 8))
    empty = batch_invariant_matmul(np.zeros((0, 8)), stored.T)
    assert empty.shape == (0, 9)
    big = rng.standard_normal((QUERY_BLOCK * 2 + 5, 8))
    np.testing.assert_array_equal(
        batch_invariant_matmul(big, stored.T)[:5],
        batch_invariant_matmul(big[:5], stored.T))


def test_search_arrays_nonuniform_error_is_actionable(vectors):
    """An IVF probe over sparse lists can retrieve ragged result counts;
    the serving batcher surfaces that as a descriptive error, not a bare
    'non-uniform' complaint."""
    index = IVFIndex(dim=16, metric="cosine", n_lists=8, nprobe=1)
    index.add(vectors[:10])
    index.train()
    queries = derive_rng("ragged-queries").standard_normal((6, 16))
    try:
        index.search_arrays(queries, 8)
    except ValueError as error:
        message = str(error)
        assert "k=8" in message
        assert "10 stored vectors" in message
        assert "6 queries" in message
        # the per-query retrieval counts are spelled out
        assert "[" in message and "]" in message
    else:
        # nprobe=1 over 8 lists of 10 vectors should give ragged counts;
        # if clustering happened to balance them, force the empty path
        lonely = FlatIndex(dim=16, metric="cosine")
        lonely.add(vectors[:1])
        scores, ids = lonely.search_arrays(queries, 8)
        assert scores.shape == (6, 1)

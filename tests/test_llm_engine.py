"""Tests for repro.llm.engine.SimulatedLLM."""

import pytest

from repro.llm import SimulatedLLM
from repro.suites.bfcl import build_bfcl_suite
from repro.suites.geoengine import build_geoengine_suite


@pytest.fixture(scope="module")
def bfcl():
    return build_bfcl_suite(n_queries=40)


@pytest.fixture(scope="module")
def geo():
    return build_geoengine_suite(n_queries=20)


@pytest.fixture(scope="module")
def strong_llm():
    return SimulatedLLM.from_registry("hermes2-pro-8b", "full")


@pytest.fixture(scope="module")
def weak_llm():
    return SimulatedLLM.from_registry("qwen2-1.5b", "q4_0")


class TestConstruction:
    def test_from_registry(self):
        llm = SimulatedLLM.from_registry("llama3.1-8b", "q4_K_M")
        assert llm.name == "llama3.1-8b-q4_K_M"

    def test_unknown_names(self):
        with pytest.raises(ValueError):
            SimulatedLLM.from_registry("gpt-4o")


class TestRecommender:
    def test_descriptions_nonempty(self, strong_llm, bfcl):
        output = strong_llm.recommend_tools(bfcl.queries[0], bfcl.registry)
        assert output.descriptions
        assert all(isinstance(text, str) and text for text in output.descriptions)

    def test_deterministic(self, strong_llm, bfcl):
        a = strong_llm.recommend_tools(bfcl.queries[1], bfcl.registry)
        b = strong_llm.recommend_tools(bfcl.queries[1], bfcl.registry)
        assert a.descriptions == b.descriptions

    def test_usage_accounts_prompt_and_completion(self, strong_llm, bfcl):
        output = strong_llm.recommend_tools(bfcl.queries[2], bfcl.registry)
        assert output.usage.prompt_tokens > 100
        assert output.usage.completion_tokens > 0

    def test_strong_model_descriptions_track_gold_tool(self, strong_llm, bfcl):
        from repro.embedding.cache import shared_embedder
        import numpy as np

        embedder = shared_embedder()
        hits = 0
        queries = bfcl.queries[:20]
        for query in queries:
            output = strong_llm.recommend_tools(query, bfcl.registry)
            gold_desc = bfcl.registry.get(query.gold_tools[0]).description
            gold_vec = embedder.encode_one(gold_desc)
            rec_vec = embedder.encode_one(output.descriptions[0])
            if float(np.dot(gold_vec, rec_vec)) > 0.5:
                hits += 1
        assert hits >= 15  # strong reasoner: most recommendations land close

    def test_weak_model_sometimes_misses_chain_tools(self, weak_llm, geo):
        shorter = 0
        for query in geo.queries:
            output = weak_llm.recommend_tools(query, geo.registry)
            if len(output.descriptions) < len(set(query.gold_tools)):
                shorter += 1
        assert shorter > 0  # weak planners under-enumerate chains

    def test_without_registry_uses_name_fallback(self, strong_llm, bfcl):
        output = strong_llm.recommend_tools(bfcl.queries[0])
        assert output.descriptions


class TestExecuteStep:
    def test_returns_call_or_error(self, strong_llm, bfcl):
        query = bfcl.queries[0]
        turn = strong_llm.execute_step(query, 0, list(bfcl.registry), 16384)
        assert turn.signalled_error or turn.call is not None

    def test_deterministic(self, strong_llm, bfcl):
        query = bfcl.queries[3]
        tools = list(bfcl.registry)
        a = strong_llm.execute_step(query, 0, tools, 16384)
        b = strong_llm.execute_step(query, 0, tools, 16384)
        assert a == b

    def test_attempt_changes_stream(self, weak_llm, bfcl):
        query = bfcl.queries[4]
        tools = list(bfcl.registry)
        turns = set()
        for i in range(6):
            call = weak_llm.execute_step(query, 0, tools, 16384, attempt=i).call
            turns.add("error" if call is None else call.to_json())
        assert len(turns) > 1  # retries explore different outcomes

    def test_gold_absent_never_correct(self, strong_llm, bfcl):
        query = bfcl.queries[5]
        tools = [tool for tool in bfcl.registry if tool.name != query.gold_tools[0]][:8]
        turn = strong_llm.execute_step(query, 0, tools, 16384)
        assert not turn.correct_tool

    def test_fewer_tools_improve_accuracy(self, bfcl):
        llm = SimulatedLLM.from_registry("llama3.1-8b", "q4_K_M")
        all_tools = list(bfcl.registry)
        correct_many = 0
        correct_few = 0
        for query in bfcl.queries:
            gold = query.gold_tools[0]
            few = [bfcl.registry.get(gold)] + [t for t in all_tools if t.name != gold][:4]
            correct_many += llm.execute_step(query, 0, all_tools, 16384).correct_tool
            correct_few += llm.execute_step(query, 0, few, 8192).correct_tool
        # the paper's Table II effect, reproduced at the engine level
        assert correct_few > correct_many

    def test_usage_kv_cached_on_later_steps(self, strong_llm, geo):
        query = geo.queries[0]
        tools = list(geo.registry)
        step0 = strong_llm.execute_step(query, 0, tools, 16384)
        step2 = strong_llm.execute_step(query, 2, tools, 16384)
        assert step0.usage.kv_cached_tokens == 0
        assert step2.usage.kv_cached_tokens > 0

    def test_empty_tools_rejected(self, strong_llm, bfcl):
        with pytest.raises(ValueError):
            strong_llm.execute_step(bfcl.queries[0], 0, [], 16384)

    def test_wrong_tool_calls_have_type_correct_args(self, weak_llm, bfcl):
        from repro.tools import SimulatedToolExecutor

        executor = SimulatedToolExecutor(bfcl.registry)
        for query in bfcl.queries[:25]:
            turn = weak_llm.execute_step(query, 0, list(bfcl.registry), 16384)
            if turn.call is not None and not turn.correct_tool:
                outcome = executor.execute(turn.call)
                # placeholder args satisfy the schema (wrong tool, valid call)
                assert outcome.ok, outcome.error

"""Tests for the product-quantization index."""

import numpy as np
import pytest

from repro.utils.rng import derive_rng
from repro.vectorstore import FlatIndex, PQIndex, index_factory


@pytest.fixture(scope="module")
def data():
    rng = derive_rng("pq-test-data")
    return rng.standard_normal((120, 16))


class TestConstruction:
    def test_m_must_divide_dim(self):
        with pytest.raises(ValueError):
            PQIndex(dim=16, m=5)

    def test_centroid_bounds(self):
        with pytest.raises(ValueError):
            PQIndex(dim=16, m=4, n_centroids=300)
        with pytest.raises(ValueError):
            PQIndex(dim=16, m=4, n_centroids=1)

    def test_l2_only(self):
        with pytest.raises(ValueError):
            PQIndex(dim=16, metric="cosine")

    def test_factory_string(self):
        index = index_factory(16, "PQ4")
        assert isinstance(index, PQIndex)
        assert index.m == 4


class TestSearch:
    def test_self_trains(self, data):
        index = PQIndex(dim=16, m=4, n_centroids=32)
        index.add(data)
        assert not index.is_trained
        index.search_one(data[0], k=1)
        assert index.is_trained

    def test_train_empty_rejected(self):
        with pytest.raises(ValueError):
            PQIndex(dim=16, m=4).train()

    def test_recall_against_exact(self, data):
        pq = PQIndex(dim=16, m=8, n_centroids=64)
        flat = FlatIndex(dim=16, metric="l2")
        pq.add(data)
        flat.add(data)
        hits = 0
        for qi in range(20):
            query = data[qi] + 0.05 * derive_rng("pq-q", qi).standard_normal(16)
            pq_top = set(pq.search_one(query, k=5).ids.tolist())
            flat_top1 = flat.search_one(query, k=1).top()[1]
            hits += int(flat_top1 in pq_top)
        assert hits >= 16  # top-1@5 recall >= 80% on easy queries

    def test_deterministic(self, data):
        a = PQIndex(dim=16, m=4, n_centroids=16)
        b = PQIndex(dim=16, m=4, n_centroids=16)
        a.add(data)
        b.add(data)
        ra = a.search_one(data[3], k=4)
        rb = b.search_one(data[3], k=4)
        np.testing.assert_array_equal(ra.ids, rb.ids)

    def test_add_after_train_reencodes(self, data):
        index = PQIndex(dim=16, m=4, n_centroids=16)
        index.add(data[:100])
        index.train()
        index.add(data[100:], ids=list(range(1000, 1020)))
        result = index.search_one(data[110], k=1)
        assert result.top()[1] == 1010


class TestCompression:
    def test_compression_ratio_large(self, data):
        index = PQIndex(dim=16, m=4, n_centroids=16)
        index.add(data)
        index.train()
        # float64 16-dim = 128 bytes -> 4 bytes of codes (plus codebooks)
        assert index.compression_ratio() > 5.0

    def test_code_bytes_scale_with_m(self, data):
        small = PQIndex(dim=16, m=2, n_centroids=16)
        large = PQIndex(dim=16, m=8, n_centroids=16)
        for index in (small, large):
            index.add(data)
            index.train()
        assert (large._codes.nbytes  # noqa: SLF001 - test introspection
                == 4 * small._codes.nbytes)

    def test_untrained_ratio_is_one(self):
        assert PQIndex(dim=16, m=4).compression_ratio() == 1.0

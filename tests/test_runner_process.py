"""Process-pool run_grid must reproduce the sequential results bitwise.

The process backend crosses a serialization boundary — suite, Search
Levels and the warm embedder are pickled to workers, episode batches and
cache snapshots are pickled back — so these tests pin down both halves
of the contract: full :class:`EpisodeResult` equality against the
sequential path, and the pickling/merging machinery itself.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.embedding.cache import CachedEmbedder
from repro.evaluation.runner import ExperimentRunner
from repro.suites import load_suite
from repro.tools.executor import SimulatedToolExecutor

SCHEMES = ["default", "lis-k3"]
MODELS = ["hermes2-pro-8b"]
QUANTS = ["q4_K_M", "q8_0"]
#: CI sets this explicitly; local runs default to a 2-worker pool.
WORKERS = int(os.environ.get("REPRO_PROCESS_WORKERS", "2"))


@pytest.fixture(scope="module")
def suite():
    return load_suite("edgehome", n_queries=6)


@pytest.fixture(scope="module")
def sequential(suite):
    runner = ExperimentRunner(suite, embedder=CachedEmbedder())
    return runner.run_grid(SCHEMES, MODELS, QUANTS, backend="sequential")


def test_process_grid_bitwise_equals_sequential(suite, sequential):
    runner = ExperimentRunner(suite, embedder=CachedEmbedder())
    process = runner.run_grid(SCHEMES, MODELS, QUANTS,
                              backend="process", max_workers=WORKERS)
    assert list(process) == list(sequential)  # same cells, same order
    for cell, run in sequential.items():
        # EpisodeResult equality covers steps, level, fallback, timing,
        # energy and token floats — bitwise across the process boundary
        assert process[cell].episodes == run.episodes, cell
        assert process[cell].summary == run.summary, cell


def test_process_grid_merges_worker_caches(suite):
    reference = ExperimentRunner(suite, embedder=CachedEmbedder())
    reference.run_grid(SCHEMES, MODELS, QUANTS, backend="sequential")

    runner = ExperimentRunner(suite, embedder=CachedEmbedder())
    runner.run_grid(SCHEMES, MODELS, QUANTS,
                    backend="process", max_workers=WORKERS)
    # the parent cache ends as warm as a sequential run leaves it: every
    # text the workers embedded merged back with identical vectors
    assert set(reference.embedder.export_cache()["entries"]) <= \
        set(runner.embedder.export_cache()["entries"])
    for text, vec in reference.embedder.export_cache()["entries"].items():
        got = runner.embedder.export_cache()["entries"][text]
        np.testing.assert_array_equal(got, vec)


def test_unknown_backend_rejected(suite):
    runner = ExperimentRunner(suite, embedder=CachedEmbedder())
    with pytest.raises(ValueError, match="unknown grid backend 'gpu'.*process"):
        runner.run_grid(SCHEMES, MODELS, QUANTS, backend="gpu")


def test_single_worker_process_backend_falls_back_sequential(suite, sequential):
    """max_workers=1 short-circuits to in-process execution, same results."""
    runner = ExperimentRunner(suite, embedder=CachedEmbedder())
    results = runner.run_grid(SCHEMES, MODELS, QUANTS,
                              backend="process", max_workers=1)
    for cell, run in sequential.items():
        assert results[cell].episodes == run.episodes, cell


# ----------------------------------------------------------------------
# the serialization boundary itself
# ----------------------------------------------------------------------
def test_runner_pickle_round_trip_preserves_episodes(suite):
    runner = ExperimentRunner(suite, embedder=CachedEmbedder())
    agent = runner.make_agent("lis-k3", *MODELS, QUANTS[0])
    want = [agent.run(query) for query in suite.queries]

    clone = pickle.loads(pickle.dumps(runner))
    clone_agent = clone.make_agent("lis-k3", *MODELS, QUANTS[0])
    got = [clone_agent.run(query) for query in suite.queries]
    assert got == want


def test_direction_bank_regenerates_bitwise_on_unpickle(suite):
    embedder = CachedEmbedder()
    embedder.encode(suite.registry.descriptions())
    bank = embedder.embedder._bank
    clone_bank = pickle.loads(pickle.dumps(bank))
    assert clone_bank.keys == bank.keys
    np.testing.assert_array_equal(clone_bank.matrix, bank.matrix)


def test_agent_pickles_with_executor_lock_recreated(suite):
    runner = ExperimentRunner(suite, embedder=CachedEmbedder())
    agent = pickle.loads(pickle.dumps(
        runner.make_agent("lis-k3", *MODELS, QUANTS[0])))
    assert isinstance(agent.executor, SimulatedToolExecutor)
    # the recreated lock must actually work (reset acquires it)
    agent.executor.reset()
    assert agent.run(suite.queries[0]).steps


def test_export_merge_skips_existing_and_respects_generation(suite):
    source = CachedEmbedder()
    source.encode(["alpha beta", "gamma delta"])
    target = CachedEmbedder()
    target.encode(["alpha beta"])

    snapshot = source.export_cache()
    assert target.merge_cache(snapshot) == 1  # only "gamma delta" is new
    np.testing.assert_array_equal(
        target.encode_one("gamma delta"), source.encode_one("gamma delta"))

    # snapshots from another projection generation are ignored wholesale
    reseeded = CachedEmbedder()
    reseeded.reseed("other-namespace")
    reseeded.encode(["epsilon"])
    assert target.merge_cache(reseeded.export_cache()) == 0
    assert "epsilon" not in target.export_cache()["entries"]


def test_export_cache_exclude_ships_only_the_delta():
    embedder = CachedEmbedder()
    embedder.encode(["inherited one", "inherited two"])
    inherited = embedder.cached_texts()
    embedder.encode(["fresh entry"])
    delta = embedder.export_cache(exclude=inherited)
    assert set(delta["entries"]) == {"fresh entry"}
    # a full export still carries everything
    assert set(embedder.export_cache()["entries"]) == \
        {"inherited one", "inherited two", "fresh entry"}


def test_merge_cache_respects_lru_bound():
    source = CachedEmbedder()
    source.encode([f"text number {i}" for i in range(8)])
    bounded = CachedEmbedder(max_entries=3)
    bounded.merge_cache(source.export_cache())
    assert len(bounded) <= 3

"""Tests for repro.llm.registry and repro.llm.tokens."""

import pytest

from repro.llm.registry import (
    MODEL_REGISTRY,
    QUANT_REGISTRY,
    get_model_spec,
    get_quant_spec,
)
from repro.llm.tokens import (
    context_pressure,
    estimate_tokens,
    plan_agent_prompt,
    tool_prompt_tokens,
)
from repro.suites.bfcl_catalog import build_bfcl_registry


class TestRegistries:
    def test_paper_models_present(self):
        expected = {"hermes2-pro-8b", "llama3.1-8b", "mistral-8b",
                    "phi3-8b", "qwen2-1.5b", "qwen2-7b"}
        assert expected == set(MODEL_REGISTRY)

    def test_paper_quants_present(self):
        assert {"full", "q4_0", "q4_1", "q4_K_M", "q8_0"} == set(QUANT_REGISTRY)

    def test_lookup_case_insensitive_models(self):
        assert get_model_spec("Llama3.1-8B").name == "llama3.1-8b"

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            get_model_spec("gpt-4")

    def test_unknown_quant(self):
        with pytest.raises(ValueError):
            get_quant_spec("q2_K")

    def test_bits_ladder(self):
        assert (QUANT_REGISTRY["q4_0"].bits_per_weight
                < QUANT_REGISTRY["q8_0"].bits_per_weight
                < QUANT_REGISTRY["full"].bits_per_weight)

    def test_reasoning_retention_monotone_in_bits(self):
        # reasoning quality is monotone in precision...
        assert (QUANT_REGISTRY["q4_0"].reasoning_retention
                < QUANT_REGISTRY["q4_K_M"].reasoning_retention
                <= QUANT_REGISTRY["q8_0"].reasoning_retention
                < QUANT_REGISTRY["full"].reasoning_retention)

    def test_long_context_retention_not_monotone(self):
        # ...but long-context retention is not (paper Table I GeoEngine:
        # q4_1 > q4_K_M > q8_0)
        assert (QUANT_REGISTRY["q4_1"].long_context_retention
                > QUANT_REGISTRY["q4_K_M"].long_context_retention
                > QUANT_REGISTRY["q8_0"].long_context_retention)

    def test_skills_in_unit_interval(self):
        for spec in MODEL_REGISTRY.values():
            for value in (spec.fc_skill, spec.arg_skill, spec.reasoning, spec.seq_skill):
                assert 0.0 < value <= 1.0, spec.name


class TestTokenEstimation:
    def test_empty(self):
        assert estimate_tokens("") == 0

    def test_four_chars_per_token(self):
        assert estimate_tokens("a" * 40) == 10

    def test_rounds_up(self):
        assert estimate_tokens("abc") == 1

    def test_tool_prompt_tokens_reasonable(self):
        registry = build_bfcl_registry()
        for tool in registry:
            tokens = tool_prompt_tokens(tool)
            assert 40 <= tokens <= 250, tool.name


class TestPromptPlan:
    @pytest.fixture(scope="class")
    def tools(self):
        return list(build_bfcl_registry())

    def test_all_51_tools_fit_16k(self, tools):
        plan = plan_agent_prompt("What is the weather in Paris?", tools, 16384)
        assert len(plan.tools_included) == 51
        assert plan.tools_truncated == ()

    def test_51_tools_overflow_4k(self, tools):
        plan = plan_agent_prompt("What is the weather in Paris?", tools, 4096)
        assert plan.tools_truncated
        assert len(plan.tools_included) < 51

    def test_prompt_tokens_additive(self, tools):
        plan = plan_agent_prompt("query", tools[:5], 8192)
        assert plan.prompt_tokens == (plan.system_tokens + plan.tool_tokens
                                      + plan.query_tokens + plan.history_tokens)

    def test_history_grows_with_steps(self, tools):
        first = plan_agent_prompt("q", tools[:5], 8192, step_index=0)
        third = plan_agent_prompt("q", tools[:5], 8192, step_index=2)
        assert third.history_tokens > first.history_tokens

    def test_truncation_is_suffix(self, tools):
        plan = plan_agent_prompt("q", tools, 4096)
        included_names = [tool.name for tool in tools[:len(plan.tools_included)]]
        assert list(plan.tools_included) == included_names


class TestContextPressure:
    def test_half(self):
        assert context_pressure(4096, 8192) == 0.5

    def test_clipped_at_one(self):
        assert context_pressure(99999, 8192) == 1.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            context_pressure(10, 0)

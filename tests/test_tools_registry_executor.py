"""Tests for repro.tools.registry and repro.tools.executor."""

import pytest

from repro.tools import SimulatedToolExecutor, ToolCall, ToolParameter, ToolRegistry, ToolSpec


@pytest.fixture
def registry():
    return ToolRegistry([
        ToolSpec("alpha", "First tool.", (ToolParameter("x", "integer"),), category="a"),
        ToolSpec("beta", "Second tool.", (), category="a"),
        ToolSpec("gamma", "Third tool.", (ToolParameter("s", "string"),), category="b"),
    ])


class TestToolRegistry:
    def test_len_and_contains(self, registry):
        assert len(registry) == 3
        assert "alpha" in registry
        assert "delta" not in registry

    def test_registration_order_preserved(self, registry):
        assert registry.names == ["alpha", "beta", "gamma"]

    def test_duplicate_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.register(ToolSpec("alpha", "dup"))

    def test_duplicate_error_lists_registered_names(self, registry):
        with pytest.raises(ValueError, match="registered tools: alpha, beta, gamma"):
            registry.register(ToolSpec("alpha", "dup"))

    def test_get_unknown(self, registry):
        with pytest.raises(KeyError):
            registry.get("delta")

    def test_get_unknown_suggests_near_miss(self, registry):
        with pytest.raises(KeyError, match="did you mean 'gamma'"):
            registry.get("gama")

    def test_get_unknown_lists_known_names(self, registry):
        with pytest.raises(KeyError, match="known names: alpha, beta, gamma"):
            registry.get("zzz")

    def test_select_alias_matches_subset(self, registry):
        assert registry.select(["beta", "alpha"]) == \
            registry.subset(["beta", "alpha"])

    def test_to_catalog_preserves_order_and_specs(self, registry):
        catalog = registry.to_catalog(name="trio")
        assert catalog.name == "trio"
        assert catalog.names == registry.names
        assert list(catalog) == list(registry)

    def test_categories(self, registry):
        assert registry.categories == ["a", "b"]

    def test_by_category(self, registry):
        assert [t.name for t in registry.by_category("a")] == ["alpha", "beta"]

    def test_subset_preserves_order(self, registry):
        assert [t.name for t in registry.subset(["gamma", "alpha"])] == ["gamma", "alpha"]

    def test_descriptions_order(self, registry):
        assert registry.descriptions()[0] == "First tool."

    def test_prompt_text_contains_all(self, registry):
        text = registry.prompt_text()
        for name in registry.names:
            assert name in text

    def test_prompt_text_subset(self, registry):
        text = registry.prompt_text(["beta"])
        assert "beta" in text and "alpha" not in text


class TestSimulatedToolExecutor:
    def test_successful_call(self, registry):
        executor = SimulatedToolExecutor(registry)
        outcome = executor.execute(ToolCall("alpha", {"x": 3}))
        assert outcome.ok
        assert outcome.value["tool"] == "alpha"
        assert outcome.api_latency_s > 0

    def test_unknown_tool_fails(self, registry):
        outcome = SimulatedToolExecutor(registry).execute(ToolCall("delta"))
        assert not outcome.ok
        assert "unknown tool" in outcome.error

    def test_not_offered_tool_fails(self, registry):
        executor = SimulatedToolExecutor(registry)
        outcome = executor.execute(ToolCall("alpha", {"x": 3}), allowed={"beta"})
        assert not outcome.ok
        assert "not offered" in outcome.error

    def test_validation_failure(self, registry):
        outcome = SimulatedToolExecutor(registry).execute(ToolCall("alpha", {"x": "three"}))
        assert not outcome.ok
        assert outcome.issues

    def test_deterministic_latency_and_result(self, registry):
        call = ToolCall("gamma", {"s": "hello"})
        a = SimulatedToolExecutor(registry).execute(call)
        b = SimulatedToolExecutor(registry).execute(call)
        assert a.api_latency_s == b.api_latency_s
        assert a.value == b.value

    def test_execution_log_and_reset(self, registry):
        executor = SimulatedToolExecutor(registry)
        executor.execute(ToolCall("beta"))
        executor.execute(ToolCall("delta"))
        assert len(executor.executed) == 2
        executor.reset()
        assert executor.executed == []

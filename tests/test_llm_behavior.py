"""Tests for repro.llm.behavior: the monotone trends the paper relies on."""

import numpy as np
import pytest

from repro.llm import behavior
from repro.llm.registry import get_model_spec, get_quant_spec
from repro.utils.rng import derive_rng

LLAMA = get_model_spec("llama3.1-8b")
QWEN_SMALL = get_model_spec("qwen2-1.5b")
Q4KM = get_quant_spec("q4_K_M")
Q40 = get_quant_spec("q4_0")
FULL = get_quant_spec("full")


class TestSelectionLogit:
    def test_fewer_tools_higher_logit(self):
        many = behavior.selection_logit(LLAMA, Q4KM, 51, 0.25, 0.3)
        few = behavior.selection_logit(LLAMA, Q4KM, 5, 0.25, 0.05)
        assert few > many
        # the paper's core effect: the gap must be large
        assert behavior.sigmoid(few) - behavior.sigmoid(many) > 0.2

    def test_quantization_hurts(self):
        full = behavior.selection_logit(LLAMA, FULL, 51, 0.25, 0.3)
        q4 = behavior.selection_logit(LLAMA, Q40, 51, 0.25, 0.3)
        assert full > q4

    def test_stronger_model_higher(self):
        strong = behavior.selection_logit(LLAMA, Q4KM, 51, 0.25, 0.3)
        weak = behavior.selection_logit(QWEN_SMALL, Q4KM, 51, 0.25, 0.3)
        assert strong > weak

    def test_similar_distractors_hurt(self):
        far = behavior.selection_logit(LLAMA, Q4KM, 10, 0.1, 0.1)
        near = behavior.selection_logit(LLAMA, Q4KM, 10, 0.8, 0.1)
        assert far > near

    def test_pressure_hurts(self):
        low = behavior.selection_logit(LLAMA, Q4KM, 10, 0.2, 0.05)
        high = behavior.selection_logit(LLAMA, Q4KM, 10, 0.2, 0.9)
        assert low > high

    def test_sequential_steps_decay(self):
        step0 = behavior.selection_logit(LLAMA, Q4KM, 10, 0.2, 0.1, step_index=0)
        step4 = behavior.selection_logit(LLAMA, Q4KM, 10, 0.2, 0.1, step_index=4)
        assert step0 > step4

    def test_invalid_n_tools(self):
        with pytest.raises(ValueError):
            behavior.selection_logit(LLAMA, Q4KM, 0, 0.2, 0.1)


class TestSigmoid:
    def test_symmetry(self):
        assert behavior.sigmoid(0.0) == pytest.approx(0.5)
        assert behavior.sigmoid(3.0) == pytest.approx(1 - behavior.sigmoid(-3.0))

    def test_extremes_safe(self):
        assert behavior.sigmoid(-1000.0) == pytest.approx(0.0)
        assert behavior.sigmoid(1000.0) == pytest.approx(1.0)


class TestArgumentModel:
    def test_more_params_harder(self):
        easy = behavior.argument_success_probability(LLAMA, Q4KM, 0, 0.1)
        hard = behavior.argument_success_probability(LLAMA, Q4KM, 4, 0.1)
        assert easy > hard

    def test_pressure_hurts_formatting(self):
        low = behavior.argument_success_probability(LLAMA, Q4KM, 2, 0.05)
        high = behavior.argument_success_probability(LLAMA, Q4KM, 2, 0.95)
        assert low > high

    def test_bounded(self):
        for n in range(6):
            p = behavior.argument_success_probability(QWEN_SMALL, Q40, n, 1.0)
            assert 0.02 <= p <= 0.995

    def test_llama_arg_weakness(self):
        # paper Fig. 2: Llama3.1 has high tool accuracy but low success ->
        # its argument channel must be weaker than Hermes2's
        hermes = get_model_spec("hermes2-pro-8b")
        assert (behavior.argument_success_probability(LLAMA, Q4KM, 2, 0.1)
                < behavior.argument_success_probability(hermes, Q4KM, 2, 0.1))


class TestErrorSignal:
    def test_weak_models_give_up_more(self):
        weak = behavior.error_signal_probability(QWEN_SMALL, Q40, 0.5)
        strong = behavior.error_signal_probability(LLAMA, FULL, 0.5)
        assert weak > strong

    def test_bounded(self):
        assert 0.0 <= behavior.error_signal_probability(QWEN_SMALL, Q40, 1.0) <= 0.35


class TestCompletionTokens:
    def test_more_tools_more_tokens(self):
        rng_a = derive_rng("ct-a")
        rng_b = derive_rng("ct-a")
        few = behavior.completion_tokens(QWEN_SMALL, Q40, 3, 2, rng_a)
        many = behavior.completion_tokens(QWEN_SMALL, Q40, 51, 2, rng_b)
        assert many > few

    def test_minimum_floor(self):
        rng = derive_rng("ct-floor")
        assert behavior.completion_tokens(get_model_spec("hermes2-pro-8b"),
                                          FULL, 1, 0, rng) >= 8

    def test_deterministic_given_stream(self):
        a = behavior.completion_tokens(LLAMA, Q4KM, 10, 2, derive_rng("ct-d"))
        b = behavior.completion_tokens(LLAMA, Q4KM, 10, 2, derive_rng("ct-d"))
        assert a == b


class TestSequentialRetention:
    def test_step_zero_free(self):
        assert behavior.sequential_retention(LLAMA, Q4KM, 0) == 0.0

    def test_weak_chains_decay_faster(self):
        phi3 = get_model_spec("phi3-8b")
        assert (behavior.sequential_retention(phi3, Q4KM, 3)
                > behavior.sequential_retention(LLAMA, Q4KM, 3))

    def test_monotone_in_steps(self):
        values = [behavior.sequential_retention(LLAMA, Q4KM, s) for s in range(5)]
        assert values == sorted(values)

"""Tests for repro.tools.catalog: the first-class ToolCatalog API."""

import json
import pickle
import random

import pytest

from repro.registry import CATALOGS, register_catalog
from repro.tools.catalog import CatalogDiff, ToolCatalog, load_catalog
from repro.tools.registry import ToolRegistry
from repro.tools.schema import ToolParameter as P
from repro.tools.schema import ToolSpec as T


def make_tools(n=4):
    return tuple(
        T(f"tool_{index}", f"Tool number {index} does useful thing {index}.",
          (P("x", "integer", "The x argument."),
           P("tags", "array", "Some tags.", required=False, item_type="string")),
          category="even" if index % 2 == 0 else "odd")
        for index in range(n)
    )


@pytest.fixture
def catalog():
    return ToolCatalog("demo", make_tools())


class TestConstruction:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            ToolCatalog("", make_tools())

    def test_duplicate_tool_names_rejected(self):
        tools = make_tools(2) + make_tools(1)
        with pytest.raises(ValueError, match="duplicate tool names.*tool_0"):
            ToolCatalog("demo", tools)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="full, compressed, minimal"):
            ToolCatalog("demo", make_tools(), variant="tiny")

    def test_tools_normalized_to_tuple(self):
        catalog = ToolCatalog("demo", list(make_tools()))
        assert isinstance(catalog.tools, tuple)


class TestLookup:
    def test_len_iter_contains(self, catalog):
        assert len(catalog) == 4
        assert [t.name for t in catalog] == ["tool_0", "tool_1", "tool_2", "tool_3"]
        assert "tool_1" in catalog
        assert "nope" not in catalog

    def test_get_unknown_suggests_near_misses(self, catalog):
        with pytest.raises(KeyError, match="did you mean.*tool_1"):
            catalog.get("tool1")

    def test_get_unknown_lists_names(self, catalog):
        with pytest.raises(KeyError, match="known names: tool_0"):
            catalog.get("zzz")

    def test_names_and_categories(self, catalog):
        assert catalog.names == ["tool_0", "tool_1", "tool_2", "tool_3"]
        assert catalog.categories == ["even", "odd"]
        assert [t.name for t in catalog.by_category("odd")] == ["tool_1", "tool_3"]

    def test_select_preserves_given_order(self, catalog):
        assert [t.name for t in catalog.select(["tool_2", "tool_0"])] == \
            ["tool_2", "tool_0"]

    def test_descriptions_and_prompt_text(self, catalog):
        assert catalog.descriptions()[0].startswith("Tool number 0")
        assert "tool_3" in catalog.prompt_text()
        assert "tool_3" not in catalog.prompt_text(["tool_0"])


class TestAlgebra:
    def test_subset_preserves_registration_order(self, catalog):
        subset = catalog.subset(["tool_3", "tool_0"])  # reversed on purpose
        assert subset.names == ["tool_0", "tool_3"]
        assert subset.name == catalog.name
        assert subset.variant == catalog.variant

    def test_subset_unknown_name_suggests(self, catalog):
        with pytest.raises(KeyError, match="did you mean"):
            catalog.subset(["tool_O"])

    def test_merge_appends_new_tools_in_order(self, catalog):
        other = ToolCatalog("extra", (
            T("extra_a", "Extra tool a does things."),
            T("tool_1", catalog.get("tool_1").description,
              catalog.get("tool_1").parameters, category="odd"),  # identical
        ))
        merged = catalog.merge(other)
        assert merged.names == ["tool_0", "tool_1", "tool_2", "tool_3", "extra_a"]
        assert merged.name == "demo+extra"

    def test_merge_conflicting_spec_rejected(self, catalog):
        other = ToolCatalog("extra", (T("tool_1", "A different description."),))
        with pytest.raises(ValueError, match="conflicting specs for tool_1"):
            catalog.merge(other)

    def test_merge_variant_mismatch_rejected(self, catalog):
        with pytest.raises(ValueError, match="variants differ"):
            catalog.merge(catalog.at("minimal"))

    def test_diff(self, catalog):
        changed = catalog.tools[1].at_variant("minimal")
        other = ToolCatalog("demo", (catalog.tools[0], changed,
                                     T("brand_new", "A new tool entirely.")))
        diff = catalog.diff(other)
        assert diff.added == ("brand_new",)
        assert diff.removed == ("tool_2", "tool_3")
        assert diff.changed == ("tool_1",)
        assert not diff.is_empty
        assert "added: brand_new" in diff.summary()

    def test_diff_identical_is_empty(self, catalog):
        diff = catalog.diff(ToolCatalog("demo", catalog.tools))
        assert diff.is_empty
        assert diff.summary() == "identical"
        assert isinstance(diff, CatalogDiff)

    def test_subset_merge_order_stress(self):
        """Random subset/merge sequences never reorder surviving tools.

        Prompt layouts and embedding-index ids key off registration
        order, so any algebra that reshuffled tools would silently
        change every downstream episode.
        """
        rng = random.Random(1234)
        base = ToolCatalog("stress", make_tools(12))
        order = {name: position for position, name in enumerate(base.names)}
        for _ in range(50):
            picked = rng.sample(base.names, rng.randint(1, len(base)))
            rng.shuffle(picked)
            subset = base.subset(picked)
            assert subset.names == sorted(picked, key=order.__getitem__)
            other_names = [n for n in base.names if n not in picked]
            if other_names:
                other = base.subset(other_names)
                merged = subset.merge(other)
                positions = [order[name] for name in merged.names]
                # each half stays in registration order within itself
                assert positions[:len(subset)] == sorted(positions[:len(subset)])
                assert positions[len(subset):] == sorted(positions[len(subset):])
                assert set(merged.names) == set(base.names)


class TestVariants:
    def test_at_full_is_identity(self, catalog):
        assert catalog.at("full") is catalog

    def test_variant_descriptions_shrink(self, catalog):
        compressed = catalog.at("compressed")
        minimal = catalog.at("minimal")
        assert compressed.variant == "compressed"
        for full_tool, min_tool in zip(catalog, minimal):
            assert len(min_tool.json_text()) < len(full_tool.json_text())
            assert min_tool.name == full_tool.name
            assert [p.name for p in min_tool.parameters] == \
                [p.name for p in full_tool.parameters]
        total = lambda c: sum(len(t.json_text()) for t in c)  # noqa: E731
        assert total(minimal) < total(compressed) < total(catalog)

    def test_variant_changes_version(self, catalog):
        versions = {catalog.version, catalog.at("compressed").version,
                    catalog.at("minimal").version}
        assert len(versions) == 3

    def test_cannot_reexpand_derived_variant(self, catalog):
        with pytest.raises(ValueError, match="reload the full catalog"):
            catalog.at("minimal").at("full")

    def test_validation_unchanged_across_variants(self, catalog):
        arguments = {"x": 3, "tags": ["a"]}
        for variant in ("full", "compressed", "minimal"):
            spec = catalog.at(variant).get("tool_0")
            assert spec.validate_arguments(arguments) == []
            assert spec.validate_arguments({"x": "three"}) != []


class TestVersion:
    def test_version_is_content_hash(self, catalog):
        clone = ToolCatalog("demo", make_tools())
        assert clone.version == catalog.version

    def test_version_changes_with_content(self, catalog):
        assert catalog.subset(["tool_0"]).version != catalog.version
        renamed = ToolCatalog("other", catalog.tools)
        assert renamed.version != catalog.version

    def test_version_stable_across_pickle(self, catalog):
        _ = catalog.version  # memoize before pickling
        clone = pickle.loads(pickle.dumps(catalog))
        assert clone.version == catalog.version
        assert clone == catalog


class TestRoundTrip:
    @pytest.mark.parametrize("variant", ["full", "compressed", "minimal"])
    def test_dict_json_pickle_round_trip(self, catalog, variant):
        original = catalog.at(variant)
        from_dict = ToolCatalog.from_dict(original.to_dict())
        from_json = ToolCatalog.from_dict(json.loads(json.dumps(original.to_dict())))
        from_pickle = pickle.loads(pickle.dumps(original))
        assert from_dict == original
        assert from_json == original
        assert from_pickle == original
        assert from_dict.version == original.version

    def test_registry_view_round_trips(self, catalog):
        registry = catalog.registry()
        assert isinstance(registry, ToolRegistry)
        assert registry.names == catalog.names
        assert registry.to_catalog(name="demo") == catalog


class TestLoadCatalog:
    def test_builtin_catalogs_registered(self):
        for name in ("bfcl", "geoengine", "edgehome"):
            assert name in CATALOGS
            catalog = load_catalog(name)
            assert isinstance(catalog, ToolCatalog)
            assert catalog.name == name
            assert catalog.variant == "full"

    def test_unknown_catalog_lists_registered(self):
        with pytest.raises(ValueError, match="registered catalogs"):
            load_catalog("nope")

    def test_variant_and_include(self):
        catalog = load_catalog("edgehome", variant="minimal",
                               include=["set_alarm", "turn_on_light"])
        assert catalog.names == ["turn_on_light", "set_alarm"]  # registration order
        assert catalog.variant == "minimal"

    def test_register_catalog_plugin_and_suite_retooling(self):
        from repro.suites import load_suite

        @register_catalog("edgehome-mini")
        def _build():
            return load_catalog("edgehome")  # same pool under a new name

        try:
            assert "edgehome-mini" in CATALOGS
            suite = load_suite("edgehome", n_queries=2,
                               catalog=load_catalog("edgehome-mini"))
            assert suite.catalog.name == "edgehome"
        finally:
            CATALOGS.unregister("edgehome-mini")

    def test_builder_must_return_catalog(self):
        CATALOGS.register("broken-catalog", lambda: "oops")
        try:
            with pytest.raises(TypeError, match="expected ToolCatalog"):
                load_catalog("broken-catalog")
        finally:
            CATALOGS.unregister("broken-catalog")


# ----------------------------------------------------------------------
# property-based round trips (hypothesis, skipped cleanly when absent)
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

names = st.from_regex(r"[a-z][a-z0-9_]{0,11}", fullmatch=True)
texts = st.text(
    alphabet=st.characters(whitelist_categories=("L", "N", "P", "Zs")),
    min_size=1, max_size=80).map(lambda s: s.strip() or "x")


@st.composite
def tool_parameters(draw):
    ptype = draw(st.sampled_from(["string", "integer", "number", "boolean",
                                  "array"]))
    enum = None
    if ptype == "string" and draw(st.booleans()):
        enum = tuple(draw(st.lists(names, min_size=1, max_size=3, unique=True)))
    return P(name=draw(names), type=ptype, description=draw(texts),
             required=draw(st.booleans()), enum=enum,
             item_type=draw(st.sampled_from(["string", "number", "array"])))


@st.composite
def tool_specs(draw):
    parameters = draw(st.lists(tool_parameters(), max_size=4,
                               unique_by=lambda p: p.name))
    return T(name=draw(names), description=draw(texts),
             parameters=tuple(parameters),
             category=draw(names),
             compressed_description=draw(st.none() | texts),
             minimal_description=draw(st.none() | texts))


@st.composite
def tool_catalogs(draw):
    tools = draw(st.lists(tool_specs(), max_size=6,
                          unique_by=lambda t: t.name))
    return ToolCatalog(name=draw(names), tools=tuple(tools))


class TestPropertyRoundTrips:
    @settings(max_examples=60, deadline=None)
    @given(spec=tool_specs())
    def test_tool_spec_round_trips(self, spec):
        assert T.from_dict(spec.to_dict()) == spec
        assert T.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec
        assert pickle.loads(pickle.dumps(spec)) == spec

    @settings(max_examples=40, deadline=None)
    @given(catalog=tool_catalogs(),
           variant=st.sampled_from(["full", "compressed", "minimal"]))
    def test_catalog_round_trips_across_variants(self, catalog, variant):
        original = catalog.at(variant)
        assert ToolCatalog.from_dict(original.to_dict()) == original
        decoded = ToolCatalog.from_dict(json.loads(json.dumps(original.to_dict())))
        assert decoded == original
        assert decoded.version == original.version
        assert pickle.loads(pickle.dumps(original)) == original

    @settings(max_examples=40, deadline=None)
    @given(catalog=tool_catalogs(), data=st.data())
    def test_subset_preserves_order_property(self, catalog, data):
        if not len(catalog):
            return
        picked = data.draw(st.lists(st.sampled_from(catalog.names),
                                    min_size=1, unique=True))
        subset = catalog.subset(picked)
        order = {name: position for position, name in enumerate(catalog.names)}
        assert subset.names == sorted(set(picked), key=order.__getitem__)

"""Cross-module integration tests: end-to-end invariants of the system."""

import pytest

from repro.evaluation.runner import ExperimentRunner
from repro.suites import load_suite


@pytest.fixture(scope="module")
def bfcl_runner():
    return ExperimentRunner(load_suite("bfcl", n_queries=30))


@pytest.fixture(scope="module")
def geo_runner():
    return ExperimentRunner(load_suite("geoengine", n_queries=25))


class TestEndToEndDeterminism:
    def test_full_batch_bit_reproducible(self, bfcl_runner):
        a = bfcl_runner.run("lis-k3", "llama3.1-8b", "q4_K_M")
        b = bfcl_runner.run("lis-k3", "llama3.1-8b", "q4_K_M")
        assert a.summary.success_rate == b.summary.success_rate
        assert a.summary.mean_time_s == b.summary.mean_time_s
        assert [e.selected_level for e in a.episodes] == \
               [e.selected_level for e in b.episodes]

    def test_fresh_runner_same_numbers(self):
        first = ExperimentRunner(load_suite("bfcl", n_queries=10))
        second = ExperimentRunner(load_suite("bfcl", n_queries=10))
        a = first.run("lis-k3", "qwen2-7b", "q4_0").summary
        b = second.run("lis-k3", "qwen2-7b", "q4_0").summary
        assert a.success_rate == b.success_rate
        assert a.mean_time_s == b.mean_time_s


class TestPaperHeadlineClaims:
    """The abstract's claims, asserted end-to-end on mini-batches."""

    def test_claim_success_rate_improvements(self, bfcl_runner):
        default = bfcl_runner.run("default", "hermes2-pro-8b", "q4_K_M").summary
        lis = bfcl_runner.run("lis-k3", "hermes2-pro-8b", "q4_K_M").summary
        assert lis.success_rate > default.success_rate

    def test_claim_execution_time_reduced_up_to_70pct(self, bfcl_runner):
        default = bfcl_runner.run("default", "hermes2-pro-8b", "q4_K_M").summary
        lis = bfcl_runner.run("lis-k3", "hermes2-pro-8b", "q4_K_M").summary
        assert lis.mean_time_s < 0.5 * default.mean_time_s

    def test_claim_power_reduced(self, bfcl_runner):
        default = bfcl_runner.run("default", "hermes2-pro-8b", "q4_K_M").summary
        lis = bfcl_runner.run("lis-k3", "hermes2-pro-8b", "q4_K_M").summary
        assert lis.avg_power_w < 0.9 * default.avg_power_w

    def test_claim_no_finetuning_plug_and_play(self, bfcl_runner):
        # every registry model runs through the identical pipeline object
        for model in ("hermes2-pro-8b", "qwen2-1.5b"):
            run = bfcl_runner.run("lis-k3", model, "q4_0", n_queries=5)
            assert run.summary.n_episodes == 5

    def test_claim_fewer_tools_presented(self, geo_runner):
        default = geo_runner.run("default", "llama3.1-8b", "q4_K_M").summary
        lis = geo_runner.run("lis-k3", "llama3.1-8b", "q4_K_M").summary
        assert lis.mean_tools_presented < 0.6 * default.mean_tools_presented


class TestCrossSchemeInvariants:
    def test_energy_conservation(self, bfcl_runner):
        # avg power x time == energy for every episode of every scheme
        for scheme in ("default", "gorilla", "lis-k3"):
            run = bfcl_runner.run(scheme, "qwen2-7b", "q4_K_M", n_queries=8)
            for episode in run.episodes:
                assert episode.energy_j == pytest.approx(
                    episode.avg_power_w * episode.time_s, rel=1e-9)

    def test_tool_accuracy_bounds_success(self, geo_runner):
        for scheme in ("default", "lis-k5"):
            run = geo_runner.run(scheme, "mistral-8b", "q4_K_M", n_queries=15)
            assert run.summary.success_rate <= run.summary.tool_accuracy + 1e-9

    def test_memory_always_fits_board(self, geo_runner):
        for scheme in ("default", "gorilla", "lis-k3"):
            run = geo_runner.run(scheme, "llama3.1-8b", "q8_0", n_queries=5)
            for episode in run.episodes:
                assert episode.peak_memory_gb < 30.0

    def test_every_episode_reports_steps(self, geo_runner):
        run = geo_runner.run("lis-k3", "hermes2-pro-8b", "q4_1", n_queries=10)
        for episode, query in zip(run.episodes, geo_runner.suite.queries[:10]):
            assert len(episode.steps) == query.n_steps


class TestSeedIsolation:
    def test_llm_root_seed_changes_outcomes(self):
        from repro.core.levels import SearchLevelBuilder
        from repro.core.pipeline import LessIsMoreAgent
        from repro.llm import SimulatedLLM

        suite = load_suite("bfcl", n_queries=20)
        levels = SearchLevelBuilder().build(suite)
        outcomes = []
        for seed in (1, 2):
            llm = SimulatedLLM.from_registry("qwen2-1.5b", "q4_0", root_seed=seed)
            agent = LessIsMoreAgent(llm=llm, suite=suite, levels=levels)
            outcomes.append([agent.run(q).success for q in suite.queries])
        assert outcomes[0] != outcomes[1]

"""Tests for repro.tools.schema."""

import json

import pytest

from repro.tools.schema import ToolCall, ToolParameter, ToolSpec


@pytest.fixture
def weather_tool():
    return ToolSpec(
        name="get_weather",
        description="Get the weather for a city.",
        parameters=(
            ToolParameter("city", "string", "City name."),
            ToolParameter("days", "integer", "Days ahead.", required=False),
            ToolParameter("units", "string", "Unit system.", required=False,
                          enum=("metric", "imperial")),
        ),
        category="weather",
    )


class TestToolParameter:
    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            ToolParameter("x", "object")

    def test_enum_requires_string(self):
        with pytest.raises(ValueError):
            ToolParameter("x", "integer", enum=("a",))

    @pytest.mark.parametrize("ptype,good,bad", [
        ("string", "hi", 3),
        ("integer", 4, 4.5),
        ("number", 4.5, "4.5"),
        ("boolean", True, 1),
    ])
    def test_accepts_scalar_types(self, ptype, good, bad):
        parameter = ToolParameter("x", ptype)
        assert parameter.accepts(good)
        assert not parameter.accepts(bad)

    def test_boolean_is_not_integer(self):
        assert not ToolParameter("x", "integer").accepts(True)

    def test_integer_is_a_number(self):
        assert ToolParameter("x", "number").accepts(3)

    def test_enum_membership(self):
        parameter = ToolParameter("x", "string", enum=("a", "b"))
        assert parameter.accepts("a")
        assert not parameter.accepts("c")

    def test_array_item_types(self):
        parameter = ToolParameter("xs", "array", item_type="number")
        assert parameter.accepts([1, 2.5])
        assert not parameter.accepts([1, "two"])
        assert not parameter.accepts("not a list")

    def test_nested_array(self):
        parameter = ToolParameter("m", "array", item_type="array")
        assert parameter.accepts([[1.0], [2.0]])

    def test_array_rejects_strings_as_sequences(self):
        """Regression: tuple coercion turned strings into fake arrays.

        ``tuple("abc")`` is ``('a', 'b', 'c')`` — it used to satisfy
        array-of-string checks, and a coerced row satisfied the
        one-level ``item_type="array"`` nesting check.  JSON arrays
        decode to lists, so only lists count as arrays now.
        """
        arr_of_str = ToolParameter("xs", "array", item_type="string")
        assert not arr_of_str.accepts("abc")
        assert not arr_of_str.accepts(tuple("abc"))
        assert not arr_of_str.accepts(("a", "b"))
        assert arr_of_str.accepts(["a", "b"])

        matrix = ToolParameter("m", "array", item_type="array")
        assert not matrix.accepts("abc")
        assert not matrix.accepts(["abc"])          # row is a string
        assert not matrix.accepts([tuple("ab")])    # row is a coerced string
        assert not matrix.accepts((["a"],))         # outer tuple
        assert matrix.accepts([["ab", "cd"]])       # list rows stay fine

    def test_json_schema_shape(self):
        schema = ToolParameter("xs", "array", "numbers", item_type="number").to_json_schema()
        assert schema["type"] == "array"
        assert schema["items"] == {"type": "number"}


class TestToolSpec:
    def test_duplicate_parameter_names_rejected(self):
        with pytest.raises(ValueError):
            ToolSpec("t", "d", (ToolParameter("a", "string"), ToolParameter("a", "string")))

    def test_required_parameters(self, weather_tool):
        assert [p.name for p in weather_tool.required_parameters] == ["city"]

    def test_parameter_lookup(self, weather_tool):
        assert weather_tool.parameter("days").type == "integer"
        assert weather_tool.parameter("nope") is None

    def test_validate_ok(self, weather_tool):
        assert weather_tool.validate_arguments({"city": "Paris"}) == []

    def test_validate_missing_required(self, weather_tool):
        issues = weather_tool.validate_arguments({})
        assert any("missing" in issue.reason for issue in issues)

    def test_validate_unexpected(self, weather_tool):
        issues = weather_tool.validate_arguments({"city": "Paris", "zipcode": "75"})
        assert any(issue.parameter == "zipcode" for issue in issues)

    def test_validate_wrong_type(self, weather_tool):
        issues = weather_tool.validate_arguments({"city": 42})
        assert any("expected string" in issue.reason for issue in issues)

    def test_validate_bad_enum(self, weather_tool):
        issues = weather_tool.validate_arguments({"city": "Paris", "units": "kelvin"})
        assert len(issues) == 1

    def test_json_schema_round_trips(self, weather_tool):
        parsed = json.loads(weather_tool.json_text())
        assert parsed["function"]["name"] == "get_weather"
        assert parsed["function"]["parameters"]["required"] == ["city"]

    def test_issue_str(self, weather_tool):
        issue = weather_tool.validate_arguments({})[0]
        assert "city" in str(issue)


class TestDescriptionVariants:
    def test_describe_full_is_identity(self, weather_tool):
        assert weather_tool.describe("full") == weather_tool.description
        assert weather_tool.describe() == weather_tool.description

    def test_derive_description_first_sentence(self):
        spec = ToolSpec("t", "Get the weather. Includes wind and humidity.")
        assert spec.describe("compressed") == "Get the weather."

    def test_derive_description_drops_trailing_example(self):
        spec = ToolSpec(
            "t", "Filter scenes acquired during a season, like Fall 2009.")
        assert spec.describe("compressed") == \
            "Filter scenes acquired during a season."

    def test_derive_minimal_truncates(self):
        spec = ToolSpec(
            "t", "Compute the monthly payment of an amortized loan from "
                 "principal, rate and term.")
        assert spec.describe("minimal") == "Compute the monthly payment of an"

    def test_authored_overrides_win(self):
        spec = ToolSpec("t", "A long full description of the tool.",
                        compressed_description="Short form.",
                        minimal_description="Tiny")
        assert spec.describe("compressed") == "Short form."
        assert spec.describe("minimal") == "Tiny"

    def test_unknown_variant_rejected(self, weather_tool):
        with pytest.raises(ValueError, match="unknown description variant"):
            weather_tool.describe("huge")

    def test_at_variant_full_is_same_object(self, weather_tool):
        assert weather_tool.at_variant("full") is weather_tool

    def test_at_variant_shrinks_json(self, weather_tool):
        minimal = weather_tool.at_variant("minimal")
        assert minimal.name == weather_tool.name
        assert len(minimal.json_text()) < len(weather_tool.json_text())
        # parameter names/types/enums survive, only prose is dropped
        assert [p.name for p in minimal.parameters] == \
            [p.name for p in weather_tool.parameters]
        assert minimal.parameter("units").enum == ("metric", "imperial")
        assert minimal.parameter("city").description == ""

    def test_at_variant_validation_identical(self, weather_tool):
        for variant in ("compressed", "minimal"):
            shrunk = weather_tool.at_variant(variant)
            assert shrunk.validate_arguments({"city": "Paris"}) == []
            assert shrunk.validate_arguments({"city": 42}) != []


class TestDictRoundTrip:
    def test_parameter_round_trip(self):
        parameter = ToolParameter("units", "string", "Unit system.",
                                  required=False, enum=("metric", "imperial"))
        assert ToolParameter.from_dict(parameter.to_dict()) == parameter

    def test_spec_round_trip(self, weather_tool):
        decoded = ToolSpec.from_dict(weather_tool.to_dict())
        assert decoded == weather_tool
        assert decoded.json_text() == weather_tool.json_text()

    def test_spec_round_trip_is_json_safe(self, weather_tool):
        payload = json.dumps(weather_tool.to_dict())
        assert ToolSpec.from_dict(json.loads(payload)) == weather_tool


class TestToolCall:
    def test_arguments_are_copied(self):
        arguments = {"a": 1}
        call = ToolCall("t", arguments)
        arguments["a"] = 2
        assert call.arguments["a"] == 1

    def test_matches_tool(self):
        assert ToolCall("t", {"a": 1}).matches_tool(ToolCall("t", {"b": 2}))
        assert not ToolCall("t").matches_tool(ToolCall("u"))

    def test_to_json_stable_ordering(self):
        a = ToolCall("t", {"b": 1, "a": 2}).to_json()
        b = ToolCall("t", {"a": 2, "b": 1}).to_json()
        assert a == b

"""Tests for repro.tools.schema."""

import json

import pytest

from repro.tools.schema import ToolCall, ToolParameter, ToolSpec


@pytest.fixture
def weather_tool():
    return ToolSpec(
        name="get_weather",
        description="Get the weather for a city.",
        parameters=(
            ToolParameter("city", "string", "City name."),
            ToolParameter("days", "integer", "Days ahead.", required=False),
            ToolParameter("units", "string", "Unit system.", required=False,
                          enum=("metric", "imperial")),
        ),
        category="weather",
    )


class TestToolParameter:
    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            ToolParameter("x", "object")

    def test_enum_requires_string(self):
        with pytest.raises(ValueError):
            ToolParameter("x", "integer", enum=("a",))

    @pytest.mark.parametrize("ptype,good,bad", [
        ("string", "hi", 3),
        ("integer", 4, 4.5),
        ("number", 4.5, "4.5"),
        ("boolean", True, 1),
    ])
    def test_accepts_scalar_types(self, ptype, good, bad):
        parameter = ToolParameter("x", ptype)
        assert parameter.accepts(good)
        assert not parameter.accepts(bad)

    def test_boolean_is_not_integer(self):
        assert not ToolParameter("x", "integer").accepts(True)

    def test_integer_is_a_number(self):
        assert ToolParameter("x", "number").accepts(3)

    def test_enum_membership(self):
        parameter = ToolParameter("x", "string", enum=("a", "b"))
        assert parameter.accepts("a")
        assert not parameter.accepts("c")

    def test_array_item_types(self):
        parameter = ToolParameter("xs", "array", item_type="number")
        assert parameter.accepts([1, 2.5])
        assert not parameter.accepts([1, "two"])
        assert not parameter.accepts("not a list")

    def test_nested_array(self):
        parameter = ToolParameter("m", "array", item_type="array")
        assert parameter.accepts([[1.0], [2.0]])

    def test_json_schema_shape(self):
        schema = ToolParameter("xs", "array", "numbers", item_type="number").to_json_schema()
        assert schema["type"] == "array"
        assert schema["items"] == {"type": "number"}


class TestToolSpec:
    def test_duplicate_parameter_names_rejected(self):
        with pytest.raises(ValueError):
            ToolSpec("t", "d", (ToolParameter("a", "string"), ToolParameter("a", "string")))

    def test_required_parameters(self, weather_tool):
        assert [p.name for p in weather_tool.required_parameters] == ["city"]

    def test_parameter_lookup(self, weather_tool):
        assert weather_tool.parameter("days").type == "integer"
        assert weather_tool.parameter("nope") is None

    def test_validate_ok(self, weather_tool):
        assert weather_tool.validate_arguments({"city": "Paris"}) == []

    def test_validate_missing_required(self, weather_tool):
        issues = weather_tool.validate_arguments({})
        assert any("missing" in issue.reason for issue in issues)

    def test_validate_unexpected(self, weather_tool):
        issues = weather_tool.validate_arguments({"city": "Paris", "zipcode": "75"})
        assert any(issue.parameter == "zipcode" for issue in issues)

    def test_validate_wrong_type(self, weather_tool):
        issues = weather_tool.validate_arguments({"city": 42})
        assert any("expected string" in issue.reason for issue in issues)

    def test_validate_bad_enum(self, weather_tool):
        issues = weather_tool.validate_arguments({"city": "Paris", "units": "kelvin"})
        assert len(issues) == 1

    def test_json_schema_round_trips(self, weather_tool):
        parsed = json.loads(weather_tool.json_text())
        assert parsed["function"]["name"] == "get_weather"
        assert parsed["function"]["parameters"]["required"] == ["city"]

    def test_issue_str(self, weather_tool):
        issue = weather_tool.validate_arguments({})[0]
        assert "city" in str(issue)


class TestToolCall:
    def test_arguments_are_copied(self):
        arguments = {"a": 1}
        call = ToolCall("t", arguments)
        arguments["a"] = 2
        assert call.arguments["a"] == 1

    def test_matches_tool(self):
        assert ToolCall("t", {"a": 1}).matches_tool(ToolCall("t", {"b": 2}))
        assert not ToolCall("t").matches_tool(ToolCall("u"))

    def test_to_json_stable_ordering(self):
        a = ToolCall("t", {"b": 1, "a": 2}).to_json()
        b = ToolCall("t", {"a": 2, "b": 1}).to_json()
        assert a == b

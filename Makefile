# Developer entry points for the Less-is-More reproduction.

PYTHON ?= python
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: test test-process test-chaos examples-smoke serve-smoke serve-smoke-uvicorn bench bench-check bench-serving bench-budget bench-obs bench-paper

## tier-1 test suite (the CI gate)
test:
	$(PYTHON) -m pytest -x -q

## process-backend equivalence tests with an explicit 2-worker pool
test-process:
	REPRO_PROCESS_WORKERS=2 $(PYTHON) -m pytest \
		tests/test_runner_process.py tests/test_serving_equivalence.py -q

## fault-injection suite (worker kills, deadlines, degradation ladder)
test-chaos:
	REPRO_PROCESS_WORKERS=2 $(PYTHON) -m pytest \
		tests/test_serving_faults.py tests/test_serving_degrade.py -q
	REPRO_PROCESS_WORKERS=2 $(PYTHON) scripts/bench_serving.py --chaos

## run the example scripts with a bounded batch (API breakage fails here)
examples-smoke:
	REPRO_EXAMPLE_QUERIES=4 $(PYTHON) examples/quickstart.py
	REPRO_EXAMPLE_QUERIES=4 $(PYTHON) examples/serving_demo.py
	REPRO_EXAMPLE_QUERIES=4 $(PYTHON) examples/catalog_hotswap.py
	REPRO_EXAMPLE_QUERIES=4 $(PYTHON) examples/tracing_demo.py
	REPRO_EXAMPLE_QUERIES=4 $(PYTHON) examples/carbon_demo.py
	$(PYTHON) -m repro carbon --requests 16 --window 4 > /dev/null
	$(PYTHON) -m repro metrics --requests 8 > /dev/null
	$(PYTHON) -m repro catalog list
	$(PYTHON) -m repro catalog show edgehome --variant compressed > /dev/null
	$(PYTHON) -m repro catalog diff edgehome edgehome
	## variant diff exits 1 (like diff(1)) — assert exactly that
	$(PYTHON) -m repro catalog diff edgehome edgehome \
		--against-variant minimal > /dev/null; test $$? -eq 1

## boot `repro serve` on an ephemeral port, hit /healthz, /v1/call and
## /metrics over real sockets, SIGINT and assert a clean shutdown
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py

## same smoke through the optional uvicorn mount (pip install uvicorn)
serve-smoke-uvicorn:
	$(PYTHON) scripts/serve_smoke.py --uvicorn

## regenerate the committed perf baseline at the repo root
bench:
	$(PYTHON) scripts/bench_perf.py --output BENCH_perf.json

## measure fresh numbers and fail on >25% throughput regression
bench-check:
	$(PYTHON) scripts/bench_perf.py --output /tmp/bench_perf_fresh.json
	$(PYTHON) scripts/check_perf_regression.py --fresh /tmp/bench_perf_fresh.json

## serving-gateway load bench: asserts micro-batched >= 2x sequential
bench-serving:
	$(PYTHON) scripts/bench_serving.py

## carbon/power budget bench: asserts budgeted serving spends less
## energy per request than uncontrolled while goodput stays > 0
bench-budget:
	$(PYTHON) scripts/bench_serving.py --budget

## tracing-overhead bench: asserts full tracing costs < 10% throughput
## (--update-baseline refreshes BENCH_perf.json's serving.obs section)
bench-obs:
	$(PYTHON) scripts/bench_obs.py

## the paper-reproduction benchmark tables/figures (slow)
bench-paper:
	$(PYTHON) -m pytest benchmarks/ -q

"""Compare a fresh BENCH_perf.json against the committed baseline.

Exits nonzero when any tracked throughput metric regressed by more than
the allowed fraction (default 25%).  Latency-style metrics (``*_ms``,
``*_s``) regress when they grow; throughput-style metrics (``*_per_s``,
``speedup``) regress when they shrink.  Machine metadata is reported but
never compared.

Run (see also ``make bench-check``)::

    PYTHONPATH=src python scripts/bench_perf.py --output /tmp/fresh.json
    python scripts/check_perf_regression.py --fresh /tmp/fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: (section, metric, higher_is_better) triples guarded against regression.
TRACKED_METRICS = [
    ("encode", "batched_texts_per_s", True),
    ("encode", "speedup", True),
    ("search", "flat_batched_ms", False),
    ("search", "ivf_batched_ms", False),
    ("search", "pq_batched_ms", False),
    ("episode", "episodes_per_s", True),
    # the multi-turn stateful suite shares the hot path but adds
    # per-episode tool state + per-step turn attribution
    ("episode", "browser_episodes_per_s", True),
    ("catalog", "build_ms", False),
    # the variant ratios are < 1.0 by construction (shrunken variants
    # cost fewer tool_prompt_tokens than full); they regress upward
    ("catalog", "compressed_token_ratio", False),
    ("catalog", "minimal_token_ratio", False),
    ("grid", "sequential_s", False),
    ("grid", "parallel_s", False),
    ("grid", "process_s", False),
    ("serving", "batched_req_per_s", True),
    ("serving", "speedup_vs_sequential", True),
    # batched_p95_ms is reported in BENCH_perf.json but not guarded:
    # tail latency of a closed-loop load test jitters far beyond the
    # throughput tolerance on a shared machine
    # recoverability invariant: the chaos scenario's faults are all
    # recoverable, so the served fraction must not drop
    ("serving.chaos", "success_rate", True),
    # observability invariant: serving with every request traced must
    # stay within tolerance of the committed traced throughput — a
    # change that fattens the tracing hot path fails here
    ("serving.obs", "req_per_s_sample_1", True),
    # the HTTP front door over real sockets; p95_ms rides along in
    # BENCH_perf.json unguarded, same latency-jitter rationale as
    # serving.batched_p95_ms
    ("serving.http", "req_per_s", True),
    # engine-boundary invariant: simulated episodes routed through
    # repro.engines must keep pace with the direct path (bench_perf
    # additionally hard-asserts the gap below 5% while measuring)
    ("serving.engine_overhead", "engined_episodes_per_s", True),
    # carbon/power budget invariants: the controller must keep spending
    # less energy per request than uncontrolled serving while goodput
    # stays positive; served/shed counts ride along unguarded
    ("serving.budget", "goodput_rps", True),
    ("serving.budget", "energy_j_per_req", False),
]


def lookup(report: dict, section: str, metric: str):
    """Resolve a possibly dotted section path (``serving.chaos``)."""
    node = report
    for part in section.split("."):
        node = node.get(part)
        if not isinstance(node, dict):
            return None
    return node.get(metric)


def compare(baseline: dict, fresh: dict,
            tolerance: float) -> list[tuple[str, float, float, float]]:
    """Return ``(metric, baseline, fresh, ratio)`` rows that regressed."""
    regressions = []
    for section, metric, higher_is_better in TRACKED_METRICS:
        base_value = lookup(baseline, section, metric)
        fresh_value = lookup(fresh, section, metric)
        if base_value is None or fresh_value is None or base_value <= 0:
            continue
        ratio = fresh_value / base_value
        regressed = (ratio < 1.0 - tolerance if higher_is_better
                     else ratio > 1.0 + tolerance)
        if regressed:
            regressions.append((f"{section}.{metric}", base_value, fresh_value, ratio))
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=str(REPO_ROOT / "BENCH_perf.json"),
                        help="committed baseline JSON")
    parser.add_argument("--fresh", required=True,
                        help="freshly generated JSON to validate")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    args = parser.parse_args(argv)

    baseline = json.loads(Path(args.baseline).read_text())
    fresh = json.loads(Path(args.fresh).read_text())

    regressions = compare(baseline, fresh, args.tolerance)
    checked = [f"{section}.{metric}" for section, metric, _ in TRACKED_METRICS
               if lookup(baseline, section, metric) is not None]
    print(f"checked {len(checked)} metrics against {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    if not regressions:
        print("OK: no throughput regression")
        return 0
    for name, base_value, fresh_value, ratio in regressions:
        print(f"REGRESSION {name}: baseline {base_value:.4g} -> fresh "
              f"{fresh_value:.4g} ({ratio:.2f}x)")
    return 1


if __name__ == "__main__":
    sys.exit(main())

"""Serving-gateway load benchmark: micro-batched vs sequential throughput.

Drives the async gateway with a closed-loop load generator at a given
concurrency, twice over the same workload and warmed caches:

* **batched** — the real configuration: micro-batches of up to
  ``--max-batch-size`` requests planned through one vectorized
  ``encode`` + multi-query search pass per flush;
* **sequential** — the experimental control: the identical gateway with
  ``max_batch_size=1``, i.e. per-request serving through the very same
  code path.

Each mode is preceded by an untimed warmup pass (one full cycle of the
workload) so the numbers reflect steady-state serving rather than the
one-time vocabulary ramp, and the comparison repeats ``--trials`` times
keeping the best speedup (load benches on shared machines jitter).  The
run **asserts** the acceptance criterion — batched throughput >= 2x
sequential at concurrency >= 32 — and prints p50/p95/p99 latency for
both modes.

Run:  PYTHONPATH=src python scripts/bench_serving.py [--concurrency 32]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.embedding.cache import CachedEmbedder  # noqa: E402
from repro.obs.sinks import read_jsonl_spans  # noqa: E402
from repro.serving import (  # noqa: E402
    FaultPlan,
    Gateway,
    HTTPConnection,
    LoadReport,
    SessionManager,
    TenantShedError,
    make_workload,
    percentile,
    run_load,
    serve_gateway,
)
from repro.specs import BudgetSpec, HttpSpec, ObsSpec, ServingSpec  # noqa: E402
from repro.suites import load_suite  # noqa: E402

#: Required batched/sequential throughput ratio (the PR's acceptance bar).
REQUIRED_SPEEDUP = 2.0
#: Required fraction of requests served under the chaos scenario.  The
#: injected faults (worker SIGKILLs) are all recoverable — retried or
#: run inline with bitwise-identical results — so anything below 1.0
#: means the supervision machinery dropped a request.
REQUIRED_CHAOS_SUCCESS = 1.0


def measure_mode(suites, spec: ServingSpec, n_requests: int,
                 concurrency: int) -> LoadReport:
    """One warmup cycle, then one measured closed-loop run."""
    embedder = CachedEmbedder()
    config = spec.to_config()
    workload_cycle = sum(len(suite.queries) for suite in suites.values())
    run_load(suites, config, n_requests=workload_cycle,
             concurrency=min(8, concurrency), embedder=embedder)
    return run_load(suites, config, n_requests=n_requests,
                    concurrency=concurrency, embedder=embedder)


def bench_serving(n_requests: int = 512, concurrency: int = 32,
                  max_batch_size: int = 32, max_wait_ms: float = 2.0,
                  trials: int = 3, suite_name: str = "edgehome") -> dict:
    """Measure both modes, return the serving metrics dict.

    Each mode runs ``trials`` times and keeps its best trial: the
    max-over-trials throughput estimates the machine's calm capacity and
    is far more stable under transient load than any single run, for the
    batched and sequential modes alike (so the speedup ratio stays
    honest).  A third, single-trial measurement re-runs the batched mode
    with plan-result memoization enabled — the workload cycles the same
    queries, so steady state is nearly all cache hits — and its
    throughput/hit counts are reported under ``plan_cache_*`` (untracked
    by the regression guard: the win depends on workload repetition).
    """
    suites = {suite_name: load_suite(suite_name)}
    batched_spec = ServingSpec(max_batch_size=max_batch_size,
                               max_wait_ms=max_wait_ms)
    sequential_spec = ServingSpec(max_batch_size=1, max_wait_ms=0.0)

    best_batched: LoadReport | None = None
    best_sequential: LoadReport | None = None
    for _ in range(trials):
        batched = measure_mode(suites, batched_spec, n_requests, concurrency)
        sequential = measure_mode(suites, sequential_spec, n_requests, concurrency)
        if best_batched is None or batched.throughput_rps > best_batched.throughput_rps:
            best_batched = batched
        if (best_sequential is None
                or sequential.throughput_rps > best_sequential.throughput_rps):
            best_sequential = sequential

    cached_spec = batched_spec.replace(plan_cache_size=4096)
    cached = measure_mode(suites, cached_spec, n_requests, concurrency)

    speedup = (best_batched.throughput_rps / best_sequential.throughput_rps
               if best_sequential.throughput_rps > 0 else 0.0)
    return {
        "suite": suite_name,
        "n_requests": n_requests,
        "concurrency": concurrency,
        "max_batch_size": max_batch_size,
        "max_wait_ms": max_wait_ms,
        "trials": trials,
        "batched_req_per_s": best_batched.throughput_rps,
        "sequential_req_per_s": best_sequential.throughput_rps,
        "speedup_vs_sequential": speedup,
        "batched_p50_ms": best_batched.latency_p50_ms,
        "batched_p95_ms": best_batched.latency_p95_ms,
        "batched_p99_ms": best_batched.latency_p99_ms,
        "sequential_p50_ms": best_sequential.latency_p50_ms,
        "sequential_p95_ms": best_sequential.latency_p95_ms,
        "sequential_p99_ms": best_sequential.latency_p99_ms,
        "mean_batch_size": best_batched.gateway_metrics["mean_batch_size"],
        "requests_rejected": best_batched.gateway_metrics["requests_rejected"],
        "plan_cache_req_per_s": cached.throughput_rps,
        "plan_cache_hits": cached.gateway_metrics["plan_cache_hits"],
        "plan_cache_misses": cached.gateway_metrics["plan_cache_misses"],
        "plan_cache_hit_rate": cached.gateway_metrics["plan_cache_hit_rate"],
    }


def bench_serving_chaos(n_requests: int = 64, concurrency: int = 8,
                        workers: int = 2, seed: int = 0,
                        crash_rate: float = 0.25,
                        suite_name: str = "edgehome",
                        trace_out: str | None = None) -> dict:
    """Serve a workload on the process backend while SIGKILLing workers.

    The seeded :class:`FaultPlan` kills pool workers at a fixed fraction
    of planned groups; every injected fault is recoverable (slice retry
    or inline fallback, bitwise-identical either way), so the guarded
    ``success_rate`` must stay at 1.0 — a drop means the supervision
    machinery lost a request.  Recovery throughput (``req_per_s``) and
    the restart/retry counters are reported for trend-watching but not
    guarded: how much latency a crash costs depends on respawn time,
    which jitters with machine load.

    ``trace_out`` additionally records the run's spans to a JSONL
    artifact and **asserts** the injected faults surfaced as ``fault``
    span events at the very hook names telemetry counted — the tracing
    side of the chaos contract.
    """
    suites = {suite_name: load_suite(suite_name)}
    obs = (ObsSpec(sink="jsonl", sink_path=trace_out)
           if trace_out else None)
    spec = ServingSpec(max_batch_size=8, max_wait_ms=2.0,
                       execution_backend="process",
                       execution_workers=workers,
                       execution_retries=2, retry_backoff_ms=20.0,
                       slice_timeout_s=30.0, obs=obs)
    plan = FaultPlan(seed=seed, worker_crash_rate=crash_rate)
    report = run_load(suites, spec.to_config(), n_requests=n_requests,
                      concurrency=concurrency, faults=plan,
                      tolerate_errors=True)
    metrics = report.gateway_metrics
    if trace_out:
        spans = read_jsonl_spans(trace_out)
        event_hooks = sorted({
            event["attributes"]["hook"]
            for span in spans for event in span["events"]
            if event["name"] == "fault"})
        injected_hooks = sorted(metrics["faults_injected_by_hook"])
        assert event_hooks == injected_hooks, (
            f"trace artifact fault events cover hooks {event_hooks}, but "
            f"telemetry injected at {injected_hooks}")
        assert len({span["trace_id"] for span in spans
                    if span["name"] == "request"}) == n_requests
    return {
        "suite": suite_name,
        "n_requests": n_requests,
        "concurrency": concurrency,
        "workers": workers,
        "seed": seed,
        "worker_crash_rate": crash_rate,
        "faults_injected": metrics["faults_injected"],
        "worker_restarts": metrics["worker_restarts"],
        "slice_retries": metrics["slice_retries"],
        "inline_fallbacks": metrics["inline_fallbacks"],
        "requests_failed": report.n_errors,
        "success_rate": report.success_rate,
        # req_per_s is *offered* load (every request, failed included);
        # goodput_rps only counts successfully served requests and is
        # the honest capacity number for a run that injects failures
        "req_per_s": report.throughput_rps,
        "goodput_rps": report.goodput_rps,
        "p95_ms": report.latency_p95_ms,
        "trace_out": trace_out,
    }


def _run_budget_waves(suite, suite_name: str, embedder, n_requests: int,
                      window: int, config) -> tuple[int, int, float, dict]:
    """Serve ``n_requests`` in waves of ``window`` with one budget tick
    between waves; returns (served, shed, wall_s, gateway metrics).

    Wave-driven ticking (instead of the controller's wall-clock loop)
    makes the ladder descent deterministic, so the guarded numbers do
    not depend on how fast this machine drains the queue.
    """

    async def scenario():
        sessions = SessionManager(embedder=embedder)
        sessions.register(suite_name, suite)
        queries = suite.queries
        async with Gateway(sessions, config=config) as gateway:
            served = shed = 0
            start = time.perf_counter()
            for wave in range(0, n_requests, window):
                batch = [queries[(wave + i) % len(queries)]
                         for i in range(min(window, n_requests - wave))]
                outcomes = await asyncio.gather(*(
                    gateway.submit(suite_name, query) for query in batch),
                    return_exceptions=True)
                for outcome in outcomes:
                    if isinstance(outcome, TenantShedError):
                        shed += 1
                    elif isinstance(outcome, BaseException):
                        raise outcome
                    else:
                        served += 1
                if gateway.budget is not None:
                    gateway.budget.tick()
            wall_s = time.perf_counter() - start
            return served, shed, wall_s, gateway.metrics()

    return asyncio.run(scenario())


def bench_serving_budget(n_requests: int = 96, window: int = 8,
                         max_batch_size: int = 8,
                         budget_fraction: float = 0.6,
                         suite_name: str = "edgehome") -> dict:
    """Energy-per-request under a self-calibrating joule budget.

    Runs the same wave-driven workload twice over warmed caches:
    uncontrolled first (to measure the baseline mean joules per
    request), then under a :class:`BudgetSpec` capped at
    ``budget_fraction`` of that baseline.  The budget controller must
    step the tenant down the ladder far enough that mean energy per
    *served* request drops below the uncontrolled mean while goodput
    stays above zero — the subsystem's acceptance criterion, guarded in
    ``BENCH_perf.json`` as ``serving.budget.goodput_rps`` (higher is
    better) and ``serving.budget.energy_j_per_req`` (lower is better).
    """
    suite = load_suite(suite_name)
    embedder = CachedEmbedder()
    base_config = ServingSpec(max_batch_size=max_batch_size,
                              max_wait_ms=2.0).to_config()
    # untimed warmup cycle (vocabulary ramp, plan paths)
    _run_budget_waves(suite, suite_name, embedder, len(suite.queries),
                      window, base_config)

    served, _, wall_s, metrics = _run_budget_waves(
        suite, suite_name, embedder, n_requests, window, base_config)
    uncontrolled_j = metrics["energy_j"] / served

    budget_j = uncontrolled_j * budget_fraction
    spec = BudgetSpec(energy_budget_j=budget_j, window_requests=window,
                      settle_requests=window, recovery_ticks=2,
                      interval_ms=3_600_000.0)
    ctl_config = ServingSpec(max_batch_size=max_batch_size,
                             max_wait_ms=2.0, budget=spec).to_config()
    ctl_served, ctl_shed, ctl_wall_s, ctl_metrics = _run_budget_waves(
        suite, suite_name, embedder, n_requests, window, ctl_config)
    assert ctl_served > 0, "budget run shed every request (goodput 0)"
    controlled_j = ctl_metrics["energy_j"] / ctl_served

    return {
        "suite": suite_name,
        "n_requests": n_requests,
        "window_requests": window,
        "budget_fraction": budget_fraction,
        "budget_j_per_req": budget_j,
        "uncontrolled_energy_j_per_req": uncontrolled_j,
        "uncontrolled_goodput_rps": served / wall_s,
        "energy_j_per_req": controlled_j,
        "energy_reduction": 1.0 - controlled_j / uncontrolled_j,
        "goodput_rps": ctl_served / ctl_wall_s,
        "served": ctl_served,
        "shed": ctl_shed,
        "carbon_g_per_req": ctl_metrics["carbon_g"] / ctl_served,
        "budget_transitions": ctl_metrics["budget_transitions"],
        "budget_transitions_detail": ctl_metrics["budget_transitions_detail"],
    }


def bench_serving_http(n_requests: int = 256, concurrency: int = 8,
                       max_batch_size: int = 32, max_wait_ms: float = 2.0,
                       suite_name: str = "edgehome") -> dict:
    """Closed-loop load over the **sockets** path: HTTP front door end
    to end.

    Boots the gateway behind :class:`AsgiServer` on an ephemeral port
    (own event loop in a background thread), then drives ``POST
    /v1/call`` from ``concurrency`` blocking client threads, each on its
    own keep-alive connection — the stdlib-only stand-in for
    ``wrk``-style load.  An untimed warmup cycle precedes the
    measurement, matching the in-process serving bench.  ``p95_ms`` is
    reported for trend-watching but not guarded (latency jitter);
    ``req_per_s`` is tracked by ``make bench-check``.
    """
    suites = {suite_name: load_suite(suite_name)}
    sessions = SessionManager(embedder=CachedEmbedder())
    for tenant, suite in suites.items():
        sessions.register(tenant, suite)
    spec = ServingSpec(max_batch_size=max_batch_size, max_wait_ms=max_wait_ms)
    gateway = Gateway(sessions, config=spec.to_config())

    bound = threading.Event()
    server_info: dict = {}

    async def serve() -> None:
        shutdown = asyncio.Event()
        server_info["loop"] = asyncio.get_running_loop()
        server_info["shutdown"] = shutdown

        def ready(server):
            server_info["port"] = server.port
            bound.set()

        await serve_gateway(gateway, http=HttpSpec(port=0), ready=ready,
                            shutdown=shutdown)

    server_thread = threading.Thread(target=lambda: asyncio.run(serve()),
                                     name="bench-http-server", daemon=True)
    server_thread.start()
    if not bound.wait(timeout=30.0):
        raise RuntimeError("HTTP bench server failed to bind within 30s")
    port = server_info["port"]

    def drive(workload, n_clients: int) -> list[float]:
        """Closed-loop: each client thread pulls the next request as
        soon as its previous one completes (shared cursor)."""
        latencies: list[float] = []
        lock = threading.Lock()
        cursor = iter(workload)

        def client() -> None:
            with HTTPConnection("127.0.0.1", port) as conn:
                while True:
                    with lock:
                        load = next(cursor, None)
                    if load is None:
                        return
                    started = time.perf_counter()
                    response = conn.post("/v1/call", {
                        "tenant": load.tenant, "qid": load.query.qid})
                    elapsed = time.perf_counter() - started
                    if response.status != 200:
                        raise RuntimeError(
                            f"HTTP bench request failed with "
                            f"{response.status}: {response.text}")
                    with lock:
                        latencies.append(elapsed)

        threads = [threading.Thread(target=client, name=f"bench-http-{i}")
                   for i in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return latencies

    try:
        cycle = sum(len(suite.queries) for suite in suites.values())
        drive(make_workload(suites, cycle), min(4, concurrency))  # warmup
        workload = make_workload(suites, n_requests)
        started = time.perf_counter()
        latencies = drive(workload, concurrency)
        wall_s = time.perf_counter() - started
    finally:
        server_info["loop"].call_soon_threadsafe(server_info["shutdown"].set)
        server_thread.join(timeout=30.0)

    metrics = gateway.metrics()
    return {
        "suite": suite_name,
        "n_requests": n_requests,
        "concurrency": concurrency,
        "max_batch_size": max_batch_size,
        "max_wait_ms": max_wait_ms,
        "req_per_s": len(latencies) / wall_s if wall_s > 0 else 0.0,
        "p50_ms": percentile(latencies, 50.0) * 1e3,
        "p95_ms": percentile(latencies, 95.0) * 1e3,
        "p99_ms": percentile(latencies, 99.0) * 1e3,
        "mean_batch_size": metrics["mean_batch_size"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-requests", type=int, default=512)
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument("--max-batch-size", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--trials", type=int, default=3,
                        help="repeat the comparison, keep the best speedup")
    parser.add_argument("--suite", default="edgehome")
    parser.add_argument("--output", default=None,
                        help="optional JSON file for the serving metrics")
    parser.add_argument("--no-assert", action="store_true",
                        help="report without enforcing the >=2x criterion")
    parser.add_argument("--chaos", action="store_true",
                        help="run the fault-injection scenario instead of "
                             "the throughput comparison")
    parser.add_argument("--http", action="store_true",
                        help="drive the HTTP front door over real sockets "
                             "instead of the in-process gateway")
    parser.add_argument("--budget", action="store_true",
                        help="run the carbon/power budget scenario: "
                             "energy per request under a self-calibrating "
                             "joule cap vs uncontrolled")
    parser.add_argument("--seed", type=int, default=0,
                        help="FaultPlan seed for --chaos")
    parser.add_argument("--trace-out", default="/tmp/serving_chaos_trace.jsonl",
                        metavar="PATH",
                        help="JSONL trace artifact for --chaos (the run "
                             "asserts injected faults appear as span "
                             "events); pass an empty string to disable")
    args = parser.parse_args(argv)

    if args.http:
        row = bench_serving_http(
            n_requests=min(args.n_requests, 256),
            concurrency=min(args.concurrency, 8),
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms, suite_name=args.suite)
        print(f"serving http ({row['suite']}, {row['n_requests']} requests, "
              f"concurrency {row['concurrency']}):")
        print(f"  sockets      : {row['req_per_s']:8.0f} req/s   "
              f"p50 {row['p50_ms']:6.1f} ms  p95 {row['p95_ms']:6.1f} ms  "
              f"p99 {row['p99_ms']:6.1f} ms  (mean batch "
              f"{row['mean_batch_size']:.1f})")
        if args.output:
            Path(args.output).write_text(json.dumps(row, indent=2) + "\n")
            print(f"wrote {args.output}")
        return 0

    if args.budget:
        row = bench_serving_budget(suite_name=args.suite)
        print(f"serving budget ({row['suite']}, {row['n_requests']} requests, "
              f"window {row['window_requests']}, cap "
              f"{row['budget_fraction']:.0%} of uncontrolled):")
        print(f"  uncontrolled : {row['uncontrolled_energy_j_per_req']:7.1f} "
              f"J/req at {row['uncontrolled_goodput_rps']:6.0f} req/s")
        print(f"  budgeted     : {row['energy_j_per_req']:7.1f} J/req at "
              f"{row['goodput_rps']:6.0f} req/s  "
              f"({row['energy_reduction']:.0%} energy saved, "
              f"{row['served']} served / {row['shed']} shed)")
        print(f"  controller   : {row['budget_transitions']} transitions "
              f"{row['budget_transitions_detail']}")
        if args.output:
            Path(args.output).write_text(json.dumps(row, indent=2) + "\n")
            print(f"wrote {args.output}")
        if not args.no_assert:
            assert row["energy_reduction"] > 0.0, (
                f"budget controller failed to reduce energy per request "
                f"({row['energy_j_per_req']:.1f} J/req vs uncontrolled "
                f"{row['uncontrolled_energy_j_per_req']:.1f} J/req)")
            print("OK: budgeted serving spends less energy per request "
                  "with goodput > 0")
        return 0

    if args.chaos:
        row = bench_serving_chaos(concurrency=min(args.concurrency, 8),
                                  seed=args.seed, suite_name=args.suite,
                                  trace_out=args.trace_out or None)
        print(f"serving chaos ({row['suite']}, {row['n_requests']} requests, "
              f"seed {row['seed']}, crash rate {row['worker_crash_rate']:.0%}):")
        print(f"  faults {row['faults_injected']} | restarts "
              f"{row['worker_restarts']} | slice retries {row['slice_retries']} "
              f"| inline fallbacks {row['inline_fallbacks']}")
        print(f"  served {row['success_rate']:.0%}: goodput "
              f"{row['goodput_rps']:.0f} req/s of {row['req_per_s']:.0f} "
              f"offered (p95 {row['p95_ms']:.1f} ms)")
        if row["trace_out"]:
            print(f"  trace artifact verified: fault span events match "
                  f"injected hooks -> {row['trace_out']}")
        if args.output:
            Path(args.output).write_text(json.dumps(row, indent=2) + "\n")
            print(f"wrote {args.output}")
        if not args.no_assert:
            assert row["success_rate"] >= REQUIRED_CHAOS_SUCCESS, (
                f"chaos run served only {row['success_rate']:.0%} of requests "
                f"(required {REQUIRED_CHAOS_SUCCESS:.0%}: every injected "
                f"fault is recoverable)")
            print("OK: all requests served through injected worker crashes")
        return 0

    row = bench_serving(
        n_requests=args.n_requests, concurrency=args.concurrency,
        max_batch_size=args.max_batch_size, max_wait_ms=args.max_wait_ms,
        trials=args.trials, suite_name=args.suite,
    )
    print(f"serving ({row['suite']}, {row['n_requests']} requests, "
          f"concurrency {row['concurrency']}):")
    print(f"  micro-batched: {row['batched_req_per_s']:8.0f} req/s   "
          f"p50 {row['batched_p50_ms']:6.1f} ms  p95 {row['batched_p95_ms']:6.1f} ms  "
          f"p99 {row['batched_p99_ms']:6.1f} ms  (mean batch "
          f"{row['mean_batch_size']:.1f})")
    print(f"  sequential   : {row['sequential_req_per_s']:8.0f} req/s   "
          f"p50 {row['sequential_p50_ms']:6.1f} ms  p95 {row['sequential_p95_ms']:6.1f} ms  "
          f"p99 {row['sequential_p99_ms']:6.1f} ms")
    print(f"  speedup      : {row['speedup_vs_sequential']:.2f}x "
          f"(required >= {REQUIRED_SPEEDUP:.1f}x)")
    print(f"  plan cache   : {row['plan_cache_req_per_s']:8.0f} req/s   "
          f"{row['plan_cache_hits']} hits / {row['plan_cache_misses']} misses "
          f"(hit rate {row['plan_cache_hit_rate']:.0%})")

    if args.output:
        Path(args.output).write_text(json.dumps(row, indent=2) + "\n")
        print(f"wrote {args.output}")

    if not args.no_assert and args.concurrency >= 32:
        assert row["speedup_vs_sequential"] >= REQUIRED_SPEEDUP, (
            f"micro-batched serving reached only "
            f"{row['speedup_vs_sequential']:.2f}x of sequential throughput "
            f"(required {REQUIRED_SPEEDUP:.1f}x)")
        print(f"OK: micro-batching >= {REQUIRED_SPEEDUP:.1f}x sequential serving")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Calibration console: paper targets vs simulator output.

Run:  python scripts/calibrate.py [n_queries]
"""

from __future__ import annotations

import sys
import time

from repro.evaluation.metrics import normalize
from repro.evaluation.reporting import render_metric_table
from repro.evaluation.runner import ExperimentRunner
from repro.suites import load_suite


def table1(n: int) -> None:
    suite_bfcl = load_suite("bfcl", n_queries=n)
    suite_geo = load_suite("geoengine", n_queries=n)
    print("=== Table I: llama3.1-8b default agent ===")
    print("paper BFCL: full 63.0 | q4_0 20.4 | q4_1 34.4 | q4_K_M 39.6 | q8_0 44.4")
    print("paper GEO : full 63.9 | q4_0 43.0 | q4_1 59.6 | q4_K_M 57.0 | q8_0 53.0")
    for suite in (suite_bfcl, suite_geo):
        runner = ExperimentRunner(suite)
        rows = {}
        for quant in ("full", "q4_0", "q4_1", "q4_K_M", "q8_0"):
            run = runner.run("default", "llama3.1-8b", quant)
            rows[f"{suite.name} {quant}"] = run.summary
        print(render_metric_table(rows))


def figures(n: int) -> None:
    for suite_name, models in (
        ("bfcl", ["hermes2-pro-8b", "llama3.1-8b", "mistral-8b", "phi3-8b",
                  "qwen2-1.5b", "qwen2-7b"]),
        ("geoengine", ["hermes2-pro-8b", "llama3.1-8b", "mistral-8b", "qwen2-7b",
                       "phi3-8b", "qwen2-1.5b"]),
    ):
        suite = load_suite(suite_name, n_queries=n)
        runner = ExperimentRunner(suite)
        print(f"\n=== Figure ({suite_name}) q4_K_M ===")
        for model in models:
            base = runner.run("default", model, "q4_K_M")
            rows = {f"{model} default": base.summary}
            for scheme in ("gorilla", "lis-k3", "lis-k5"):
                rows[f"{model} {scheme}"] = runner.run(scheme, model, "q4_K_M").summary
            print(render_metric_table(rows))
            for scheme in ("gorilla", "lis-k3", "lis-k5"):
                norm = normalize(rows[f"{model} {scheme}"], base.summary)
                print(f"    {scheme:<8} norm_time={norm.normalized_time:.2f} "
                      f"norm_power={norm.normalized_power:.2f}")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    start = time.time()
    table1(n)
    figures(n)
    print(f"\n[{time.time() - start:.1f}s for n={n}]")


if __name__ == "__main__":
    main()

"""Boot ``repro serve`` for real and smoke the HTTP front door.

The one thing the in-process tier-1 tests cannot cover: the actual
``python -m repro serve`` process — argument parsing, gateway boot, the
asyncio sockets server, signal handling.  This script launches it on an
ephemeral port, drives ``/healthz``, ``POST /v1/call`` and ``/metrics``
over a real connection, then SIGINTs the server and asserts a clean
exit.  stdlib only (subprocess + http.client), like everything else on
the serving edge.

Run:  PYTHONPATH=src python scripts/serve_smoke.py [--uvicorn]

``--uvicorn`` smokes the same endpoints through the optional uvicorn
mount (``repro serve --uvicorn``) instead of the builtin asyncio
server — CI's http-extras job runs this leg after installing uvicorn.
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serving.http import HTTPConnection  # noqa: E402
from repro.suites import load_suite  # noqa: E402

BANNER = re.compile(r"serving tenants \[(?P<tenants>[^\]]*)\] at "
                    r"http://(?P<host>[\d.]+):(?P<port>\d+)")
#: uvicorn's own ready line (it never prints our banner)
UVICORN_BANNER = re.compile(
    r"Uvicorn running on http://(?P<host>[\d.]+):(?P<port>\d+)")
SUITE, N_QUERIES = "edgehome", 6
BOOT_TIMEOUT_S = 60.0


def wait_for_banner(process: subprocess.Popen,
                    uvicorn: bool = False) -> tuple[str, int]:
    """Read server stdout until the ready banner names the bound port."""
    pattern = UVICORN_BANNER if uvicorn else BANNER
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise SystemExit(
                f"server exited before binding (rc={process.poll()})")
        print(f"  server: {line.rstrip()}")
        match = pattern.search(line)
        if match:
            if not uvicorn:
                assert match.group("tenants") == SUITE
            return match.group("host"), int(match.group("port"))
    raise SystemExit(f"no ready banner within {BOOT_TIMEOUT_S:.0f}s")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--uvicorn", action="store_true",
                        help="smoke through the uvicorn mount (requires the "
                             "optional uvicorn extra)")
    args = parser.parse_args(argv)

    qid = load_suite(SUITE, n_queries=N_QUERIES).queries[0].qid
    command = [sys.executable, "-m", "repro", "serve", "--tenants", SUITE,
               "-n", str(N_QUERIES), "--port", "0"]
    if args.uvicorn:
        command.append("--uvicorn")
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        cwd=REPO_ROOT, env={**os.environ, "PYTHONPATH": "src"},
    )
    try:
        host, port = wait_for_banner(process, uvicorn=args.uvicorn)
        with HTTPConnection(host, port) as conn:
            health = conn.get("/healthz")
            assert health.status == 200, health.text
            assert health.json()["status"] == "ok"
            print(f"  /healthz ok (tenants {health.json()['tenants']})")

            call = conn.post("/v1/call", {"tenant": SUITE, "qid": qid})
            assert call.status == 200, call.text
            payload = call.json()
            assert payload["episode"]["qid"] == qid
            assert call.trace_id == payload["trace_id"] != ""
            print(f"  /v1/call ok (trace {payload['trace_id']}, "
                  f"{payload['latency_s'] * 1e3:.1f} ms)")

            metrics = conn.get("/metrics")
            assert metrics.status == 200
            assert "version=0.0.4" in metrics.headers["content-type"]
            assert "repro_requests_completed_total 1" in metrics.text
            print(f"  /metrics ok ({len(metrics.text.splitlines())} lines)")
    except BaseException:
        process.kill()
        process.wait()
        raise

    process.send_signal(signal.SIGINT)
    remainder = process.communicate(timeout=30.0)[0]
    for line in remainder.splitlines():
        print(f"  server: {line}")
    assert process.returncode == 0, \
        f"server exited {process.returncode} on SIGINT"
    assert "shutdown complete" in remainder
    print("OK: served, scraped, and shut down cleanly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Perf-tracking harness: measure the retrieval stack, emit BENCH_perf.json.

Times the four hot paths this repo optimizes — batched sentence
encoding, multi-query index search, single-episode execution, and the
full experiment grid — and writes the numbers to ``BENCH_perf.json`` at
the repo root.  The committed file is the perf baseline every future PR
is compared against (see ``scripts/check_perf_regression.py`` and
``make bench-check``).

Run:  PYTHONPATH=src python scripts/bench_perf.py [--output BENCH_perf.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "scripts"))

from bench_obs import bench_obs  # noqa: E402
from bench_serving import (  # noqa: E402
    bench_serving,
    bench_serving_budget,
    bench_serving_chaos,
    bench_serving_http,
)
from repro.embedding.cache import CachedEmbedder  # noqa: E402
from repro.embedding.sentence import SentenceEmbedder  # noqa: E402
from repro.session import open_session  # noqa: E402
from repro.specs import AgentSpec, GridSpec  # noqa: E402
from repro.suites import load_suite  # noqa: E402
from repro.vectorstore import FlatIndex, IVFIndex, PQIndex  # noqa: E402

#: grid used for the wall-time measurement (small but multi-cell)
GRID_SCHEMES = ["default", "gorilla", "lis-k3"]
GRID_MODELS = ["hermes2-pro-8b"]
GRID_QUANTS = ["q4_K_M", "q8_0"]


def median_time(fn, repeats: int, warmup: int = 1) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def bench_encode(repeats: int) -> dict:
    """Batched vs historical-loop encode throughput on the EdgeHome corpus."""
    corpus = load_suite("edgehome").registry.descriptions()
    embedder = SentenceEmbedder()
    embedder.encode(corpus)  # warm directions/memos for both paths

    batched_s = median_time(lambda: embedder.encode(corpus), repeats)
    loop_s = median_time(
        lambda: [embedder.encode_one_reference(text) for text in corpus],
        max(3, repeats // 5),
    )
    return {
        "corpus": "edgehome",
        "n_texts": len(corpus),
        "batched_ms": batched_s * 1e3,
        "loop_reference_ms": loop_s * 1e3,
        "batched_texts_per_s": len(corpus) / batched_s,
        "loop_reference_texts_per_s": len(corpus) / loop_s,
        "speedup": loop_s / batched_s,
    }


def bench_search(repeats: int) -> dict:
    """Multi-query search latency for flat / IVF / PQ over a real corpus."""
    suite = load_suite("bfcl")
    embedder = SentenceEmbedder()
    vectors = embedder.encode(suite.registry.descriptions())
    queries = embedder.encode([query.text for query in suite.queries[:64]])

    flat = FlatIndex(dim=embedder.dim, metric="cosine")
    flat.add(vectors)
    ivf = IVFIndex(dim=embedder.dim, metric="cosine", n_lists=8, nprobe=2)
    ivf.add(vectors)
    ivf.train()
    pq = PQIndex(dim=embedder.dim, m=16, n_centroids=32)
    pq.add(vectors)
    pq.train()

    rows = {"n_vectors": len(flat), "n_queries": int(queries.shape[0]), "k": 3}
    for name, index in (("flat", flat), ("ivf", ivf), ("pq", pq)):
        batched_s = median_time(lambda: index.search(queries, 3), repeats)
        per_query_s = median_time(
            lambda: [index.search_one(query, 3) for query in queries],
            max(3, repeats // 5),
        )
        rows[f"{name}_batched_ms"] = batched_s * 1e3
        rows[f"{name}_per_query_ms"] = per_query_s * 1e3
        rows[f"{name}_batch_speedup"] = per_query_s / batched_s
    return rows


def _episodes_per_s(suite_name: str, repeats: int, engine=None) -> float:
    """Warmed lis-k3 episode throughput over one 16-query batch.

    Best-of rather than median: episode batches are long enough that
    background load skews half the samples on a shared machine, and the
    guarded baseline needs the stable (uncontended) figure.
    """
    session = open_session(suite_name, n_queries=16, embedder=CachedEmbedder())
    suite = session.suite
    agent = session.build_agent(AgentSpec(scheme="lis-k3",
                                          model="hermes2-pro-8b",
                                          quant="q4_K_M", engine=engine))
    agent.run(suite.queries[0])  # warm caches

    def episode_batch() -> float:
        start = time.perf_counter()
        for query in suite.queries:
            agent.run(query)
        return time.perf_counter() - start

    batch_s = min(episode_batch() for _ in range(max(5, repeats // 3)))
    return len(suite.queries) / batch_s


def bench_episodes(repeats: int) -> dict:
    """End-to-end Less-is-More episode throughput (recommend → plan → run).

    ``browser_episodes_per_s`` tracks the multi-turn stateful suite —
    per-episode tool state plus per-step turn attribution ride the same
    hot path, so a regression in the carryover machinery lands here.
    """
    return {
        "suite": "edgehome",
        "scheme": "lis-k3",
        "n_episodes": 16,
        "episodes_per_s": _episodes_per_s("edgehome", repeats),
        "browser_episodes_per_s": _episodes_per_s("browser", repeats),
    }


def bench_engine_overhead(repeats: int) -> dict:
    """The engine boundary's cost on the default path: must stay < 5%.

    ``engine=None`` is the pre-boundary direct construction;
    ``EngineSpec("simulated")`` routes the *same* SimulatedLLM through
    the ``repro.engines`` registry.  The factory returns the identical
    object type, so any gap is pure dispatch overhead — asserted under
    5% here and guarded (with the normal tolerance) by
    ``check_perf_regression.py`` so the seam can never quietly tax
    every simulated run.
    """
    from repro.specs import EngineSpec

    def make_agent(engine):
        session = open_session("edgehome", n_queries=16,
                               embedder=CachedEmbedder())
        agent = session.build_agent(AgentSpec(
            scheme="lis-k3", model="hermes2-pro-8b", quant="q4_K_M",
            engine=engine))
        agent.run(session.suite.queries[0])  # warm caches
        return agent, session.suite.queries

    direct_agent, queries = make_agent(None)
    engined_agent, _ = make_agent(EngineSpec("simulated"))

    def batch(agent):
        start = time.perf_counter()
        for query in queries:
            agent.run(query)
        return time.perf_counter() - start

    # alternate the two paths and keep each one's best time — back-to-
    # back medians drift far more than the 5% budget on shared machines,
    # while interleaved minima cancel the drift
    direct_samples, engined_samples = [], []
    for _ in range(max(5, repeats // 3)):
        direct_samples.append(batch(direct_agent))
        engined_samples.append(batch(engined_agent))
    direct = len(queries) / min(direct_samples)
    engined = len(queries) / min(engined_samples)
    overhead_frac = 1.0 - engined / direct
    assert overhead_frac < 0.05, (
        f"engine boundary costs {overhead_frac:.1%} episode throughput "
        f"(direct {direct:.1f}/s vs engined {engined:.1f}/s); budget is 5%")
    return {
        "suite": "edgehome",
        "scheme": "lis-k3",
        "direct_episodes_per_s": direct,
        "engined_episodes_per_s": engined,
        "overhead_frac": overhead_frac,
    }


def bench_catalog(repeats: int) -> dict:
    """Catalog build time and per-variant prompt-token totals.

    The token columns quantify the description-variant lever: the same
    tool pool presented ``compressed``/``minimal`` costs strictly fewer
    ``tool_prompt_tokens`` than ``full``.  The ratios (< 1.0) are
    guarded so a regression that quietly fattens the shrunken variants
    fails ``make bench-check``.
    """
    from repro.llm.tokens import tool_prompt_tokens
    from repro.registry import CATALOGS
    from repro.tools.catalog import load_catalog

    names = CATALOGS.names()
    build_s = median_time(lambda: [CATALOGS.get(name)() for name in names],
                          repeats)

    report: dict = {"catalogs": names, "build_ms": build_s * 1e3}
    totals = {"full": 0, "compressed": 0, "minimal": 0}
    for name in names:
        catalog = load_catalog(name)
        for variant in totals:
            tokens = sum(tool_prompt_tokens(tool)
                         for tool in catalog.at(variant))
            report[f"{name}_{variant}_tokens"] = tokens
            totals[variant] += tokens
    for variant, total in totals.items():
        report[f"{variant}_tokens_total"] = total
    report["compressed_token_ratio"] = totals["compressed"] / totals["full"]
    report["minimal_token_ratio"] = totals["minimal"] / totals["full"]
    return report


def bench_grid(n_queries: int) -> dict:
    """Full-grid wall time: sequential vs thread pool vs process pool.

    The process measurement engages the pool even on small machines
    (at least 2 workers) so the serialization overhead is tracked
    everywhere; the wall-time *win* only materializes with real cores —
    the episode loop is GIL-bound pure Python, so threads never beat
    sequential by much, while processes scale with ``process_workers``.
    """
    suite = load_suite("edgehome", n_queries=n_queries)
    cells = len(GRID_SCHEMES) * len(GRID_MODELS) * len(GRID_QUANTS)
    process_workers = min(cells, max(2, os.cpu_count() or 1))

    def run(backend, max_workers):
        """Best-of-two wall time — the same sampling policy for every
        backend, so the recorded speedups compare like with like."""
        grid = GridSpec(schemes=tuple(GRID_SCHEMES), models=tuple(GRID_MODELS),
                        quants=tuple(GRID_QUANTS), backend=backend,
                        workers=max_workers)

        def once():
            session = open_session(suite=suite, embedder=CachedEmbedder())
            start = time.perf_counter()
            session.run_grid(grid)
            return time.perf_counter() - start
        return min(once() for _ in range(2))

    sequential_s = run("sequential", 1)
    parallel_s = run("thread", None)
    process_s = run("process", process_workers)
    return {
        "suite": "edgehome",
        "cells": cells,
        "n_queries": n_queries,
        "sequential_s": sequential_s,
        "parallel_s": parallel_s,
        "parallel_speedup": sequential_s / parallel_s,
        "process_workers": process_workers,
        "process_s": process_s,
        "process_speedup": sequential_s / process_s,
    }


def collect(repeats: int, grid_queries: int) -> dict:
    serving = bench_serving()
    # nested sections: chaos numbers live under serving.chaos so the
    # regression gate can guard the recoverability invariant
    # (serving.chaos success_rate) next to the throughput metrics, and
    # tracing-overhead numbers under serving.obs (guarding the traced
    # throughput keeps observability honest about its hot-path cost)
    serving["chaos"] = bench_serving_chaos()
    serving["obs"] = bench_obs()
    # the sockets path: same gateway behind the HTTP front door, so the
    # delta against batched_req_per_s is the wire + JSON overhead
    serving["http"] = bench_serving_http()
    # the engine boundary: simulated episodes routed through
    # repro.engines vs the direct path (< 5% asserted inside)
    serving["engine_overhead"] = bench_engine_overhead(repeats)
    # the carbon/power budget scenario: energy per request under a
    # self-calibrating joule cap vs uncontrolled, with goodput > 0
    serving["budget"] = bench_serving_budget()
    return {
        "schema_version": 2,
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
        },
        "encode": bench_encode(repeats),
        "search": bench_search(repeats),
        "episode": bench_episodes(repeats),
        "catalog": bench_catalog(repeats),
        "grid": bench_grid(grid_queries),
        "serving": serving,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_perf.json"),
                        help="where to write the JSON report")
    parser.add_argument("--repeats", type=int, default=30,
                        help="timing repeats per measurement (median is kept)")
    parser.add_argument("--grid-queries", type=int, default=12,
                        help="queries per grid cell in the wall-time bench")
    args = parser.parse_args(argv)

    report = collect(args.repeats, args.grid_queries)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    encode, search, grid = report["encode"], report["search"], report["grid"]
    print(f"encode : {encode['batched_texts_per_s']:>10.0f} texts/s batched "
          f"(x{encode['speedup']:.1f} vs loop reference)")
    print(f"search : flat {search['flat_batched_ms']:.2f} ms / "
          f"{search['n_queries']} queries (x{search['flat_batch_speedup']:.1f} "
          f"vs per-query)")
    print(f"episode: {report['episode']['episodes_per_s']:.1f} episodes/s "
          f"(browser multi-turn "
          f"{report['episode']['browser_episodes_per_s']:.1f}/s)")
    catalog = report["catalog"]
    print(f"catalog: {len(catalog['catalogs'])} catalogs in "
          f"{catalog['build_ms']:.1f} ms; tool prompt tokens "
          f"{catalog['full_tokens_total']} full -> "
          f"{catalog['compressed_tokens_total']} compressed "
          f"(x{catalog['compressed_token_ratio']:.2f}) -> "
          f"{catalog['minimal_tokens_total']} minimal "
          f"(x{catalog['minimal_token_ratio']:.2f})")
    print(f"grid   : {grid['cells']} cells in {grid['sequential_s']:.2f}s seq / "
          f"{grid['parallel_s']:.2f}s threads (x{grid['parallel_speedup']:.2f}) / "
          f"{grid['process_s']:.2f}s process@{grid['process_workers']} "
          f"(x{grid['process_speedup']:.2f})")
    serving = report["serving"]
    print(f"serving: {serving['batched_req_per_s']:.0f} req/s micro-batched "
          f"(x{serving['speedup_vs_sequential']:.2f} vs sequential, "
          f"p95 {serving['batched_p95_ms']:.1f} ms)")
    chaos = serving.get("chaos")
    if chaos:
        print(f"chaos  : served {chaos['success_rate']:.0%} through "
              f"{chaos['faults_injected']} worker kills "
              f"({chaos['worker_restarts']} restarts, "
              f"{chaos['slice_retries']} retries, "
              f"{chaos['inline_fallbacks']} inline) at "
              f"{chaos['goodput_rps']:.0f} req/s goodput")
    http = serving.get("http")
    if http:
        print(f"http   : {http['req_per_s']:.0f} req/s over sockets "
              f"(p95 {http['p95_ms']:.1f} ms, mean batch "
              f"{http['mean_batch_size']:.1f})")
    engine = serving.get("engine_overhead")
    if engine:
        print(f"engine : {engine['engined_episodes_per_s']:.1f} episodes/s "
              f"through the engine boundary vs "
              f"{engine['direct_episodes_per_s']:.1f} direct "
              f"({engine['overhead_frac']:+.1%} overhead)")
    budget = serving.get("budget")
    if budget:
        print(f"budget : {budget['energy_j_per_req']:.1f} J/req budgeted vs "
              f"{budget['uncontrolled_energy_j_per_req']:.1f} uncontrolled "
              f"({budget['energy_reduction']:.0%} saved) at "
              f"{budget['goodput_rps']:.0f} req/s goodput")
    obs = serving.get("obs")
    if obs:
        print(f"obs    : {obs['req_per_s_sample_1']:.0f} req/s fully traced "
              f"vs {obs['req_per_s_untraced']:.0f} untraced "
              f"({obs['overhead_frac_sample_1']:+.1%} overhead)")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Tracing-overhead benchmark: what observability costs the hot path.

Measures closed-loop serving throughput four ways over the same
workload and warmed caches:

* **untraced** — no ``ObsSpec`` at all: the tracer is ``None`` and the
  hot path carries a single ``is None`` branch per request;
* **sample 0.0 / 0.1 / 1.0** — a memory-sink tracer at increasing
  sample rates; 0.0 prices the per-request sampling decision, 1.0
  prices full span trees (4+ spans per request) into the ring.

Each mode repeats ``--trials`` times keeping its best run (same
best-of-trials policy as ``bench_serving.py``), and the run **asserts**
the acceptance criterion — full tracing costs less than
``MAX_OVERHEAD_FRAC`` of untraced throughput.  ``req_per_s_sample_1``
is guarded by ``check_perf_regression.py``; the per-tenant cost-ledger
snapshot of the fully-traced run rides along under ``cost``.

Run:  PYTHONPATH=src python scripts/bench_obs.py [--update-baseline]
(``--update-baseline`` merges the row into BENCH_perf.json's
``serving.obs`` section without re-running the whole perf harness.)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "scripts"))

from bench_serving import measure_mode  # noqa: E402
from repro.specs import ObsSpec, ServingSpec  # noqa: E402
from repro.suites import load_suite  # noqa: E402

#: Maximum tolerated throughput cost of tracing every request.
MAX_OVERHEAD_FRAC = 0.10

#: (result key suffix, ObsSpec or None) in measurement order.
MODES = (
    ("untraced", None),
    ("sample_0", ObsSpec(sink="memory", sample_rate=0.0)),
    ("sample_0_1", ObsSpec(sink="memory", sample_rate=0.1)),
    ("sample_1", ObsSpec(sink="memory", sample_rate=1.0)),
)


def bench_obs(n_requests: int = 512, concurrency: int = 32,
              max_batch_size: int = 32, max_wait_ms: float = 2.0,
              trials: int = 3, suite_name: str = "edgehome") -> dict:
    """Measure all four modes, return the ``serving.obs`` metrics dict."""
    suites = {suite_name: load_suite(suite_name)}
    row: dict = {
        "suite": suite_name,
        "n_requests": n_requests,
        "concurrency": concurrency,
        "trials": trials,
        "sink": "memory",
    }
    # modes are interleaved within each trial (not measured back-to-back
    # per mode) so a machine warming up or cooling down over the bench
    # biases every mode equally instead of flattering whichever ran last
    best: dict = {}
    for _ in range(trials):
        for key, obs in MODES:
            spec = ServingSpec(max_batch_size=max_batch_size,
                               max_wait_ms=max_wait_ms, obs=obs)
            report = measure_mode(suites, spec, n_requests, concurrency)
            if (key not in best
                    or report.throughput_rps > best[key].throughput_rps):
                best[key] = report
    for key, _ in MODES:
        row[f"req_per_s_{key}"] = best[key].throughput_rps
    # the fully-traced run's per-tenant token accounting — the
    # cost-ledger readout BENCH_perf.json carries
    row["cost"] = best["sample_1"].cost
    row["overhead_frac_sample_1"] = (
        1.0 - row["req_per_s_sample_1"] / row["req_per_s_untraced"]
        if row["req_per_s_untraced"] > 0 else 0.0)
    return row


def merge_into_baseline(row: dict, path: Path) -> None:
    """Rewrite ``serving.obs`` in an existing BENCH_perf.json in place."""
    report = json.loads(path.read_text())
    report.setdefault("serving", {})["obs"] = row
    path.write_text(json.dumps(report, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-requests", type=int, default=512)
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--suite", default="edgehome")
    parser.add_argument("--output", default=None,
                        help="optional JSON file for the obs metrics row")
    parser.add_argument("--update-baseline", action="store_true",
                        help="merge the row into BENCH_perf.json's "
                             "serving.obs section")
    parser.add_argument("--no-assert", action="store_true",
                        help="report without enforcing the overhead bound")
    args = parser.parse_args(argv)

    row = bench_obs(n_requests=args.n_requests, concurrency=args.concurrency,
                    trials=args.trials, suite_name=args.suite)
    print(f"serving obs ({row['suite']}, {row['n_requests']} requests, "
          f"concurrency {row['concurrency']}, {row['sink']} sink):")
    for key, _ in MODES:
        label = key.replace("_", " ").replace("0 1", "0.1")
        print(f"  {label:<10}: {row[f'req_per_s_{key}']:8.0f} req/s")
    print(f"  overhead at sample 1.0: {row['overhead_frac_sample_1']:.1%} "
          f"(bound {MAX_OVERHEAD_FRAC:.0%})")
    tenants = row["cost"]["by_tenant"]
    for tenant in sorted(tenants):
        stats = tenants[tenant]
        print(f"  cost[{tenant}]: {stats['requests']} requests, "
              f"{stats['tool_prompt_tokens']} tool prompt tokens "
              f"(mean {stats['mean_tool_prompt_tokens']:.0f}/request)")

    if args.output:
        Path(args.output).write_text(json.dumps(row, indent=2) + "\n")
        print(f"wrote {args.output}")
    if args.update_baseline:
        baseline = REPO_ROOT / "BENCH_perf.json"
        merge_into_baseline(row, baseline)
        print(f"updated serving.obs in {baseline}")

    if not args.no_assert:
        assert row["overhead_frac_sample_1"] < MAX_OVERHEAD_FRAC, (
            f"tracing every request cost "
            f"{row['overhead_frac_sample_1']:.1%} of untraced throughput "
            f"(bound {MAX_OVERHEAD_FRAC:.0%})")
        print(f"OK: full tracing costs < {MAX_OVERHEAD_FRAC:.0%} throughput")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Legacy setup shim.

The execution environment ships setuptools 65 without the ``wheel``
package, so PEP 660 editable installs cannot build; keeping a setup.py
(and no ``[build-system]`` table) lets ``pip install -e .`` take the
legacy ``setup.py develop`` path, which works fully offline.
"""

from setuptools import setup

setup()
